"""Command-line interface for simulated deployments.

DCDB ships operator tools (``dcdbconfig``, ``dcdbquery``) next to its
daemons; this module provides the reproduction's equivalent over a
declarative deployment file (see :mod:`repro.deploy`):

``python -m repro.cli run --config dep.json --duration 60``
    Build the deployment, run it for the given simulated duration, and
    print a traffic summary.

``python -m repro.cli sensors --config dep.json --duration 5 [--match RE]``
    List the sensor topics visible at the Collect Agent.

``python -m repro.cli query --config dep.json --duration 60 --topic T``
    Run, then print one topic's series (with a terminal sparkline).

``python -m repro.cli plugins``
    List the operator plugins available to configuration blocks.

``python -m repro.cli report --config dep.json --duration 60``
    Run, then print a full deployment report: topology, traffic,
    operators, and sparklines of the busiest sensors.

``python -m repro.cli metrics --config dep.json --duration 60``
    Run, then print a host's telemetry registry via its ``GET /metrics``
    REST route (JSON, ``--format prometheus`` text exposition, or
    ``--report`` for a Fig 5-style overhead summary).  ``--host``
    selects a pusher by node path; the default is the Collect Agent.

``python -m repro.cli check [--config FILE]... [--lint] [--flow FILE]...
[--runtime FILE]...``
    Analyze configuration files (deployment specs, plugin blocks — JSON
    or Python scripts containing them), run the repo-specific AST lint
    pass, run the **whole-deployment dataflow analyzer** over a
    deployment spec (``--flow``: production rates, window-vs-cache
    supply, physical units, memory and resilience budgets — F-series
    rules; ``--flow-report`` prints the inferred per-pipeline plan),
    and/or execute a **bounded sanitized run** of a deployment
    spec (``--runtime``) hunting lock-order inversions, unit-state
    races and invariant violations (R-series rules).  ``--fail-on``
    picks the severity that makes the exit code non-zero; ``--format
    json`` emits the diagnostics machine-readably (with a
    ``schema_version`` field).  Rules: ``docs/STATIC_ANALYSIS.md``.

Setting ``WINTERMUTE_SANITIZE=1`` in the environment runs any *other*
subcommand (``run``, ``report``, ...) under the same runtime sanitizer,
printing findings to stderr without changing the exit code.

``run --snapshot out.npz`` additionally archives the Collect Agent's
storage to a compressed file loadable with ``StorageBackend.load``.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import re
import sys
from typing import List, Optional

from repro.common.textplot import sparkline
from repro.core.registry import available_plugins
from repro.deploy import build_deployment


def _load(path: str):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _build_and_run(args):
    dep = build_deployment(_load(args.config))
    dep.run(args.duration)
    dep.agent.flush()
    return dep


def cmd_run(args) -> int:
    """`run`: execute the deployment and print a traffic/operator summary."""
    dep = _build_and_run(args)
    storage = dep.agent.storage
    print(f"simulated {args.duration:.0f}s on {len(dep.pushers)} nodes")
    print(f"sensors: {len(dep.agent.sensor_topics())}")
    print(f"readings stored: {storage.total_readings():,}")
    tier_stats = getattr(storage, "tier_stats", None)
    if tier_stats is not None:
        stats = tier_stats()
        segments = stats["segments"]
        print(
            f"storage: tiered at {stats['directory']}, "
            f"{segments['raw']} raw / {segments['rollup_10s']} 10s / "
            f"{segments['rollup_1min']} 1min segment(s), "
            f"{stats['disk_bytes']:,} bytes on disk, "
            f"{stats['flushes']} flush(es), "
            f"{stats['replayed_points']:,} replayed"
        )
    print(f"mqtt messages: {dep.broker.published_count:,} published, "
          f"{dep.broker.delivered_count:,} delivered")
    if dep.link is not None:
        state = dep.link.link_state()
        spilled = sum(p.spill_depth for p in dep.pushers.values())
        print(
            f"link: {'up' if state['up'] else 'down'}, "
            f"{state['delivered']:,} delivered, "
            f"{state['dropped']:,} dropped, "
            f"{state['refused']:,} refused, "
            f"{spilled:,} spilled pending"
        )
    operators = [
        op for m in list(dep.managers.values()) + [dep.agent_manager]
        for op in m.operators()
    ]
    if operators:
        print("operators:")
        for op in operators:
            stats = op.stats()
            print(
                f"  {stats['name']:24s} {stats['units']:5d} units "
                f"{stats['computes']:6d} computes {stats['errors']:4d} errors"
            )
    if getattr(args, "snapshot", None):
        n = storage.save(args.snapshot)
        print(f"snapshot: {n} series -> {args.snapshot}")
    return 0


def cmd_report(args) -> int:
    """`report`: execute and print a full markdown deployment report."""
    dep = _build_and_run(args)
    spec = dep.sim.spec
    print("# Deployment report\n")
    print("## Topology")
    print(f"- nodes: {len(dep.sim.node_paths)} "
          f"({spec.cpus_per_node} cores each), "
          f"racks: {len(dep.sim.topology.rack_paths)}")
    print(f"- simulated duration: {args.duration:.0f}s")
    print(f"- jobs scheduled: {len(dep.sim.scheduler.all_jobs())}")
    print("\n## Data plane")
    print(f"- sensors: {len(dep.agent.sensor_topics())}")
    print(f"- readings stored: {dep.agent.storage.total_readings():,}")
    print(f"- mqtt: {dep.broker.published_count:,} published / "
          f"{dep.broker.delivered_count:,} delivered / "
          f"{dep.broker.handler_errors} handler errors")
    cache_mb = sum(
        c.memory_bytes() for p in dep.pushers.values()
        for c in p.caches.values()
    ) / 2**20
    print(f"- pusher cache memory (total): {cache_mb:.1f} MB")
    print("\n## Analytics")
    operators = [
        op for m in list(dep.managers.values()) + [dep.agent_manager]
        for op in m.operators()
    ]
    if not operators:
        print("- (no operators configured)")
    for op in operators:
        stats = op.stats()
        print(
            f"- `{stats['name']}` [{stats['mode']}/{stats['unit_mode']}]: "
            f"{stats['units']} units, {stats['computes']} computes, "
            f"{stats['errors']} errors, "
            f"{stats['busy_ns'] / 1e6:.1f} ms busy"
        )
    print("\n## Telemetry (Collect Agent)")
    qe_total = 0
    for name in ("qe_cache_hits_total", "qe_storage_fallbacks_total",
                 "qe_misses_total"):
        metric = dep.agent.telemetry.get(name)
        value = metric.value if metric is not None else 0
        qe_total += value
        print(f"- {name}: {value}")
    drain = dep.agent.telemetry.get("drain_latency_ns")
    if drain is not None and drain.count:
        print(f"- ingest drains: {drain.count}, "
              f"mean {drain.mean / 1e3:.1f} us")
    print("\n## Busiest sensors")
    counts = [
        (dep.agent.storage.count(t), t) for t in dep.agent.storage.topics()
    ]
    for count, topic in sorted(counts, reverse=True)[:8]:
        _, values = dep.series(topic)
        print(f"- `{topic}` ({count} readings)")
        print(f"  `[{sparkline(values, width=56)}]`")
    return 0


def cmd_sensors(args) -> int:
    """`sensors`: list the Collect Agent's sensor topics."""
    dep = _build_and_run(args)
    pattern = re.compile(args.match) if args.match else None
    for topic in dep.agent.sensor_topics():
        if pattern is None or pattern.search(topic):
            print(topic)
    return 0


def cmd_query(args) -> int:
    """`query`: print one topic's series with summary statistics."""
    dep = _build_and_run(args)
    ts, values = dep.series(args.topic)
    if len(values) == 0:
        print(f"no data for {args.topic}", file=sys.stderr)
        return 1
    print(f"{args.topic}: {len(values)} readings, "
          f"t = {ts[0]:.1f}..{ts[-1]:.1f}s")
    print(f"min {values.min():.3f}  mean {values.mean():.3f}  "
          f"max {values.max():.3f}")
    print(f"[{sparkline(values)}]")
    if args.tail:
        for t, v in list(zip(ts, values))[-args.tail:]:
            print(f"  {t:10.2f}s  {v:.4f}")
    return 0


def cmd_metrics(args) -> int:
    """`metrics`: print a host's telemetry (via its /metrics REST route)."""
    from repro.common.timeutil import NS_PER_SEC
    from repro.telemetry import format_overhead_report, overhead_report

    dep = _build_and_run(args)
    if args.host in (None, "agent"):
        host_name, host = "agent", dep.agent
    else:
        host = dep.pushers.get(args.host)
        if host is None:
            known = ", ".join(sorted(dep.pushers))
            print(f"no pusher {args.host!r}; known hosts: agent, {known}",
                  file=sys.stderr)
            return 1
        host_name = args.host
    if args.report:
        report = overhead_report(
            host.telemetry, elapsed_ns=int(args.duration * NS_PER_SEC)
        )
        print(format_overhead_report(report, name=host_name))
        return 0
    params = {"format": args.format}
    if args.match:
        params["match"] = args.match
    resp = host.rest.get("/metrics", **params)
    if not resp.ok:
        print(f"GET /metrics failed: {resp.body}", file=sys.stderr)
        return 1
    if args.format == "prometheus":
        sys.stdout.write(resp.body["exposition"])
    else:
        print(json.dumps(resp.body["metrics"], indent=2))
    return 0


#: Version of the ``check --format json`` document layout.  The
#: original unversioned output counts as version 1; version 2 added
#: this field itself plus runtime (R-series) diagnostics; version 3
#: added dataflow (F-series) diagnostics and the ``flow_report`` field;
#: version 4 added concurrency (S-series) diagnostics, the
#: ``concurrency_report`` field and the ``ignored`` suppression count.
CHECK_SCHEMA_VERSION = 4

#: Severities that fail the check, per ``--fail-on`` threshold.
_FAIL_LEVELS = {
    "error": ("error",),
    "warning": ("error", "warning"),
    "info": ("error", "warning", "info"),
}


def cmd_check(args) -> int:
    """`check`: static/lint/runtime analysis of configs and sources."""
    import os
    from dataclasses import replace

    import repro
    from repro.analysis import (
        Diagnostic,
        analyze_deployment,
        analyze_pipeline_blocks,
        count_by_severity,
        extract_configs,
        lint_paths_counted,
        sort_key,
    )

    if not args.config and not args.lint and not args.runtime \
            and not args.flow and args.concurrency is None:
        print("check: nothing to do (pass --config FILE, --lint, "
              "--concurrency, --flow FILE and/or --runtime FILE)",
              file=sys.stderr)
        return 2
    diags = []
    ignored = 0
    for path in args.config or []:
        result = extract_configs(path)
        for line, reason in result.skipped:
            diags.append(Diagnostic(
                code="W015", severity="info",
                message=f"config block not statically evaluable: {reason}",
                file=path, line=line,
            ))
        for cfg in result.configs:
            if cfg.kind == "deployment":
                found = analyze_deployment(
                    cfg.value, known_plugins=result.local_plugins,
                    max_units=args.max_units,
                )
            else:
                blocks = (
                    cfg.value if cfg.kind == "blocks" else [cfg.value]
                )
                found = analyze_pipeline_blocks(
                    blocks, known_plugins=result.local_plugins,
                    max_units=args.max_units,
                )
            diags.extend(
                replace(d, file=d.file or cfg.file, line=d.line or cfg.line)
                for d in found
            )
    if args.lint:
        targets = args.lint_path or [
            os.path.dirname(os.path.abspath(repro.__file__))
        ]
        lint_diags, lint_ignored = lint_paths_counted(targets)
        diags.extend(lint_diags)
        ignored += lint_ignored
    concurrency_report = None
    if args.concurrency is not None:
        from repro.analysis.concurrency import (
            analyze_concurrency,
            render_concurrency_report,
        )

        targets = args.concurrency or [
            os.path.dirname(os.path.abspath(repro.__file__))
        ]
        conc = analyze_concurrency(targets)
        diags.extend(conc.diagnostics)
        ignored += conc.ignored
        if args.concurrency_report:
            concurrency_report = render_concurrency_report(conc)
    flow_reports = {}
    for path in args.flow or []:
        from repro.analysis import DiagnosticCollector
        from repro.analysis.flow import build_flow_model, render_flow_report

        try:
            spec = _load(path)
        except (OSError, ValueError) as exc:
            diags.append(Diagnostic(
                code="W005", severity="error",
                message=f"cannot load deployment spec: {exc}", file=path,
            ))
            continue
        flow_out = DiagnosticCollector()
        model = build_flow_model(
            spec, flow_out, memory_budget_mb=args.flow_memory_budget_mb
        )
        # A spec-level "ignore" list is the JSON counterpart of the
        # inline "# wintermute: ignore[...]" marker (JSON: no comments).
        ignore_codes = spec.get("ignore") if isinstance(spec, dict) else None
        ignore_codes = set(ignore_codes) if isinstance(
            ignore_codes, list) else set()
        for d in flow_out.sink:
            if d.code in ignore_codes:
                ignored += 1
                continue
            diags.append(replace(d, file=d.file or path))
        if args.flow_report:
            flow_reports[path] = render_flow_report(model)
    runtime_events = {}
    for path in args.runtime or []:
        from repro.sanitizer import run_runtime_check

        result = run_runtime_check(path, duration_s=args.runtime_duration)
        diags.extend(
            replace(d, file=d.file or path) for d in result.diagnostics
        )
        runtime_events[path] = result.events

    diags.sort(key=sort_key)
    counts = count_by_severity(diags)
    fail_on = args.fail_on
    if args.strict and fail_on == "error":
        fail_on = "warning"  # --strict predates and implies --fail-on warning
    failing = sum(counts[s] for s in _FAIL_LEVELS[fail_on])
    exit_code = 1 if failing else 0
    if args.format == "json":
        doc = {
            "schema_version": CHECK_SCHEMA_VERSION,
            "diagnostics": [d.to_dict() for d in diags],
            "summary": counts,
            "ignored": ignored,
            "exit_code": exit_code,
        }
        if runtime_events:
            doc["runtime"] = runtime_events
        if flow_reports:
            doc["flow_report"] = flow_reports
        if concurrency_report is not None:
            doc["concurrency_report"] = concurrency_report
        print(json.dumps(doc, indent=2))
        return exit_code
    for diag in diags:
        if diag.severity == "info" and args.quiet:
            continue
        print(diag.format())
    for path, report in flow_reports.items():
        print(f"flow {path}:")
        for line in report.splitlines():
            print(f"  {line}")
    if concurrency_report is not None:
        for line in concurrency_report.splitlines():
            print(line)
    for path, events in runtime_events.items():
        print(f"runtime {path}: {events.get('compute_passes', 0)} passes, "
              f"{events.get('lock_acquisitions', 0)} lock acquisitions, "
              f"{events.get('views_tracked', 0)} views tracked")
    print(f"check: {counts['error']} error(s), {counts['warning']} "
          f"warning(s), {counts['info']} info, {ignored} ignored")
    return exit_code


def cmd_plugins(args) -> int:
    """`plugins`: list the registered operator plugins."""
    for name in available_plugins():
        print(name)
    return 0


def cmd_tree(args) -> int:
    """`tree`: render the deployment's sensor tree."""
    dep = _build_and_run(args)
    from repro.core.navigator import SensorNavigator

    navigator = SensorNavigator.from_topics(dep.agent.sensor_topics())
    tree = navigator.tree

    def render(node, prefix=""):
        children = sorted(node.children.values(), key=lambda n: n.name)
        sensors = sorted(node.sensors)
        entries = [(c.name, c) for c in children] + [
            (s, None) for s in sensors
        ]
        for i, (name, child) in enumerate(entries):
            last = i == len(entries) - 1
            branch = "`-- " if last else "|-- "
            if child is None:
                print(f"{prefix}{branch}{name}")
            else:
                print(f"{prefix}{branch}{name}/")
                render(child, prefix + ("    " if last else "|   "))

    print("/")
    render(tree.root)
    print(
        f"\n{tree.n_sensors} sensors, {tree.max_level + 1} component levels"
    )
    return 0


def make_parser() -> argparse.ArgumentParser:
    """Build the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Run and inspect simulated DCDB/Wintermute deployments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--config", required=True,
                       help="deployment JSON file (see repro.deploy)")
        p.add_argument("--duration", type=float, default=30.0,
                       help="simulated seconds to run (default 30)")

    p_run = sub.add_parser("run", help="run a deployment, print a summary")
    add_common(p_run)
    p_run.add_argument("--snapshot",
                       help="save the agent's storage to this .npz file")
    p_run.set_defaults(fn=cmd_run)

    p_report = sub.add_parser("report", help="run and print a full report")
    add_common(p_report)
    p_report.set_defaults(fn=cmd_report)

    p_sensors = sub.add_parser("sensors", help="list sensor topics")
    add_common(p_sensors)
    p_sensors.add_argument("--match", help="regex filter on topics")
    p_sensors.set_defaults(fn=cmd_sensors)

    p_query = sub.add_parser("query", help="print one topic's series")
    add_common(p_query)
    p_query.add_argument("--topic", required=True)
    p_query.add_argument("--tail", type=int, default=0,
                         help="also print the last N readings")
    p_query.set_defaults(fn=cmd_query)

    p_metrics = sub.add_parser(
        "metrics", help="print a host's telemetry registry"
    )
    add_common(p_metrics)
    p_metrics.add_argument("--host", default=None,
                           help="'agent' (default) or a pusher node path")
    p_metrics.add_argument("--format", choices=("json", "prometheus"),
                           default="json",
                           help="output representation (default json)")
    p_metrics.add_argument("--match",
                           help="regex filter on metric names")
    p_metrics.add_argument("--report", action="store_true",
                           help="print a Fig 5-style overhead summary "
                                "instead of raw series")
    p_metrics.set_defaults(fn=cmd_metrics)

    p_check = sub.add_parser(
        "check",
        help="statically analyze configs / lint the source tree",
    )
    p_check.add_argument(
        "--config", action="append", default=[], metavar="FILE",
        help="configuration file to analyze (.json spec/block, or a .py "
             "script containing config dict literals); repeatable",
    )
    p_check.add_argument(
        "--lint", action="store_true",
        help="run the repo-specific AST lint rules (L001..L008)",
    )
    p_check.add_argument(
        "--lint-path", action="append", default=[], metavar="PATH",
        help="file or directory to lint (default: the repro package)",
    )
    p_check.add_argument(
        "--concurrency", nargs="*", default=None, metavar="PATH",
        help="run the static concurrency analyzer (interprocedural "
             "locksets + guarded-by inference; S001..S010) over PATHs "
             "(default: the repro package)",
    )
    p_check.add_argument(
        "--concurrency-report", action="store_true",
        help="with --concurrency: also print the inferred guarded-by "
             "table per class and the static lock-order graph",
    )
    p_check.add_argument(
        "--flow", action="append", default=[], metavar="FILE",
        help="deployment spec (.json) to run the dataflow analyzer on "
             "(rates/windows/units/budgets; F-series rules); repeatable",
    )
    p_check.add_argument(
        "--flow-report", action="store_true",
        help="with --flow: also print the inferred per-pipeline "
             "rate/unit/memory plan",
    )
    p_check.add_argument(
        "--flow-memory-budget-mb", type=float, default=1024.0,
        help="per-host cache memory budget for F008 (default 1024 MiB)",
    )
    p_check.add_argument(
        "--runtime", action="append", default=[], metavar="FILE",
        help="deployment spec to execute under the runtime sanitizer "
             "(bounded run; R-series rules); repeatable",
    )
    p_check.add_argument(
        "--runtime-duration", type=float, default=10.0,
        help="simulated seconds per --runtime run (default 10)",
    )
    p_check.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="diagnostic output format (default text)",
    )
    p_check.add_argument(
        "--max-units", type=int, default=10_000,
        help="unit-cardinality threshold for W014 (default 10000)",
    )
    p_check.add_argument(
        "--fail-on", choices=("error", "warning", "info"), default="error",
        help="lowest severity that fails the check (default error)",
    )
    p_check.add_argument(
        "--strict", action="store_true",
        help="treat warnings as failures (same as --fail-on warning)",
    )
    p_check.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress info diagnostics in text output",
    )
    p_check.set_defaults(fn=cmd_check)

    p_plugins = sub.add_parser("plugins", help="list operator plugins")
    p_plugins.set_defaults(fn=cmd_plugins)

    p_tree = sub.add_parser("tree", help="print the sensor tree")
    add_common(p_tree)
    p_tree.set_defaults(fn=cmd_tree)
    return parser


def _run_sanitized(args) -> int:
    """Run a subcommand under the runtime sanitizer (WINTERMUTE_SANITIZE).

    Findings go to stderr; the subcommand's own exit code is preserved —
    the env var is an observability switch, `check --runtime` is the
    gating path.
    """
    from repro.sanitizer import make_sanitizer

    san = make_sanitizer()
    with san.activate():
        code = args.fn(args)
    findings = san.finish()
    for diag in findings:
        print(diag.format(), file=sys.stderr)
    print(f"sanitizer: {len(findings)} finding(s)", file=sys.stderr)
    return code


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for `wintermute-sim` / `python -m repro.cli`."""
    from repro.sanitizer import hooks

    args = make_parser().parse_args(argv)
    try:
        if hooks.env_enabled() and args.command != "check":
            return _run_sanitized(args)
        return args.fn(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe: not an error.
        with contextlib.suppress(Exception):
            sys.stdout.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
