"""CART decision trees on NumPy (regression and classification).

The split search is fully vectorised: per candidate feature the node's
samples are sorted once, and the impurity of every possible split is
evaluated with prefix sums (sum of squares for the MSE criterion, class
counts for Gini).  Trees are stored as flat arrays so prediction is an
iterative, vectorised descent rather than per-sample recursion — the
idiom the HPC-Python guides recommend over Python-level loops.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

_NO_FEATURE = -1


class _Nodes:
    """Growable flat node storage."""

    def __init__(self, value_width: int) -> None:
        self.feature: list = []
        self.threshold: list = []
        self.left: list = []
        self.right: list = []
        self.value: list = []
        self.value_width = value_width

    def add(self, value: np.ndarray) -> int:
        idx = len(self.feature)
        self.feature.append(_NO_FEATURE)
        self.threshold.append(0.0)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(value)
        return idx

    def finalize(self) -> Tuple[np.ndarray, ...]:
        return (
            np.asarray(self.feature, dtype=np.int64),
            np.asarray(self.threshold, dtype=np.float64),
            np.asarray(self.left, dtype=np.int64),
            np.asarray(self.right, dtype=np.int64),
            np.asarray(self.value, dtype=np.float64),
        )


class _BaseTree:
    """Shared fit/predict machinery of the two tree flavours."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        random_state: Optional[int] = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1: {max_depth}")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ValueError("bad min_samples parameters")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = np.random.default_rng(random_state)
        self._fitted = False

    # -- subclass hooks -------------------------------------------------

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _best_split(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[float, float]:
        """Best (threshold, impurity decrease) for one feature column."""
        raise NotImplementedError

    def _node_impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    # -- fitting ----------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_BaseTree":
        """Grow the tree on ``(X, y)``."""
        X = np.asarray(X, dtype=np.float64)
        y = self._prepare_targets(np.asarray(y))
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError(f"length mismatch: {len(X)} vs {len(y)}")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.n_features_ = X.shape[1]
        nodes = _Nodes(self._value_width())
        # Explicit stack avoids recursion limits on deep trees.
        root = nodes.add(self._leaf_value(y))
        stack = [(root, np.arange(len(X)), 0)]
        n_feat_try = self.max_features or self.n_features_
        n_feat_try = min(n_feat_try, self.n_features_)
        while stack:
            node_id, idx, depth = stack.pop()
            y_node = y[idx]
            if (
                depth >= self.max_depth
                or len(idx) < self.min_samples_split
                or self._node_impurity(y_node) <= 1e-12
            ):
                continue
            features = self._rng.choice(
                self.n_features_, size=n_feat_try, replace=False
            )
            best_gain, best_feature, best_threshold = 0.0, -1, 0.0
            for f in features:
                threshold, gain = self._best_split(X[idx, f], y_node)
                if gain > best_gain:
                    best_gain, best_feature, best_threshold = gain, int(f), threshold
            if best_feature < 0:
                continue
            mask = X[idx, best_feature] <= best_threshold
            left_idx, right_idx = idx[mask], idx[~mask]
            if (
                len(left_idx) < self.min_samples_leaf
                or len(right_idx) < self.min_samples_leaf
            ):
                continue
            nodes.feature[node_id] = best_feature
            nodes.threshold[node_id] = best_threshold
            left = nodes.add(self._leaf_value(y[left_idx]))
            right = nodes.add(self._leaf_value(y[right_idx]))
            nodes.left[node_id], nodes.right[node_id] = left, right
            stack.append((left, left_idx, depth + 1))
            stack.append((right, right_idx, depth + 1))
        (
            self.feature_,
            self.threshold_,
            self.left_,
            self.right_,
            self.value_,
        ) = nodes.finalize()
        self._fitted = True
        return self

    def _prepare_targets(self, y: np.ndarray) -> np.ndarray:
        return np.asarray(y, dtype=np.float64)

    def _value_width(self) -> int:
        return 1

    # -- prediction -------------------------------------------------------

    def _leaf_indices(self, X: np.ndarray) -> np.ndarray:
        """Leaf node id of every sample (vectorised descent)."""
        if not self._fitted:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ValueError(
                f"X must be 2-D with {self.n_features_} features, got {X.shape}"
            )
        node = np.zeros(len(X), dtype=np.int64)
        for _ in range(self.max_depth + 1):
            feature = self.feature_[node]
            active = feature >= 0
            if not active.any():
                break
            rows = np.nonzero(active)[0]
            f = feature[rows]
            go_left = X[rows, f] <= self.threshold_[node[rows]]
            node[rows] = np.where(
                go_left, self.left_[node[rows]], self.right_[node[rows]]
            )
        return node

    @property
    def n_nodes(self) -> int:
        """Number of nodes in the fitted tree."""
        return len(self.feature_) if self._fitted else 0


def _mse_best_split(
    x: np.ndarray, y: np.ndarray, min_leaf: int
) -> Tuple[float, float]:
    """Best threshold by SSE reduction over all split positions."""
    n = len(x)
    if n < 2 * min_leaf:
        return 0.0, 0.0
    order = np.argsort(x, kind="stable")
    xs, ys = x[order], y[order]
    cum = np.cumsum(ys)
    cumsq = np.cumsum(ys * ys)
    total_sse = cumsq[-1] - cum[-1] ** 2 / n
    # Split after position i (1-based counts): left has i samples.
    counts = np.arange(1, n, dtype=np.float64)
    sse_left = cumsq[:-1] - cum[:-1] ** 2 / counts
    right_sum = cum[-1] - cum[:-1]
    right_sq = cumsq[-1] - cumsq[:-1]
    sse_right = right_sq - right_sum**2 / (n - counts)
    sse = sse_left + sse_right
    valid = (xs[1:] > xs[:-1]) & (counts >= min_leaf) & (n - counts >= min_leaf)
    if not valid.any():
        return 0.0, 0.0
    sse = np.where(valid, sse, np.inf)
    best = int(np.argmin(sse))
    gain = float(total_sse - sse[best])
    threshold = float((xs[best] + xs[best + 1]) / 2.0)
    return threshold, max(gain, 0.0)


class DecisionTreeRegressor(_BaseTree):
    """CART regression tree minimising squared error."""

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        return np.array([y.mean()])

    def _node_impurity(self, y: np.ndarray) -> float:
        return float(y.var()) if len(y) > 1 else 0.0

    def _best_split(self, x: np.ndarray, y: np.ndarray) -> Tuple[float, float]:
        return _mse_best_split(x, y, self.min_samples_leaf)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted targets for each row of ``X``."""
        leaves = self._leaf_indices(X)
        return self.value_[leaves, 0]


class DecisionTreeClassifier(_BaseTree):
    """CART classification tree minimising Gini impurity.

    Class labels must be integers in ``[0, n_classes)``; pass
    ``n_classes`` explicitly when a fit subset may miss some labels.
    """

    def __init__(self, n_classes: Optional[int] = None, **kwargs) -> None:
        super().__init__(**kwargs)
        self.n_classes = n_classes

    def _prepare_targets(self, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=np.int64)
        if y.size and y.min() < 0:
            raise ValueError("class labels must be non-negative integers")
        inferred = int(y.max()) + 1 if y.size else 1
        if self.n_classes is None:
            self.n_classes = inferred
        elif inferred > self.n_classes:
            raise ValueError(
                f"label {inferred - 1} outside declared {self.n_classes} classes"
            )
        return y

    def _value_width(self) -> int:
        return self.n_classes or 1

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        counts = np.bincount(y, minlength=self.n_classes).astype(np.float64)
        return counts / max(1, counts.sum())

    def _node_impurity(self, y: np.ndarray) -> float:
        p = self._leaf_value(y)
        return float(1.0 - (p * p).sum())

    def _best_split(self, x: np.ndarray, y: np.ndarray) -> Tuple[float, float]:
        n = len(x)
        min_leaf = self.min_samples_leaf
        if n < 2 * min_leaf:
            return 0.0, 0.0
        order = np.argsort(x, kind="stable")
        xs, ys = x[order], y[order]
        onehot = np.zeros((n, self.n_classes), dtype=np.float64)
        onehot[np.arange(n), ys] = 1.0
        cum = np.cumsum(onehot, axis=0)
        total = cum[-1]
        parent_gini = 1.0 - ((total / n) ** 2).sum()
        counts = np.arange(1, n, dtype=np.float64)
        left = cum[:-1]
        right = total - left
        gini_left = 1.0 - ((left / counts[:, None]) ** 2).sum(axis=1)
        gini_right = 1.0 - ((right / (n - counts)[:, None]) ** 2).sum(axis=1)
        weighted = (counts * gini_left + (n - counts) * gini_right) / n
        valid = (
            (xs[1:] > xs[:-1]) & (counts >= min_leaf) & (n - counts >= min_leaf)
        )
        if not valid.any():
            return 0.0, 0.0
        weighted = np.where(valid, weighted, np.inf)
        best = int(np.argmin(weighted))
        gain = float(parent_gini - weighted[best]) * n
        threshold = float((xs[best] + xs[best + 1]) / 2.0)
        return threshold, max(gain, 0.0)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Per-class probabilities from leaf class frequencies."""
        leaves = self._leaf_indices(X)
        return self.value_[leaves]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most likely class for each row of ``X``."""
        return np.argmax(self.predict_proba(X), axis=1)
