"""Statistical feature extraction and aggregation.

The regressor plugin of the power-prediction case study computes "a
series of statistical features (e.g. mean or standard deviation)" from
each input sensor's recent readings and concatenates them into a feature
vector.  The persyst plugin aggregates per-core metrics into quantiles.
Both primitives live here, together with a Welford-style streaming
accumulator for cheap windowless aggregation.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

#: Per-sensor features, in vector order.
FEATURE_NAMES = (
    "mean",
    "std",
    "min",
    "max",
    "last",
    "median",
    "slope",
    "p25",
    "p75",
)

N_FEATURES = len(FEATURE_NAMES)


def window_features(values: np.ndarray) -> np.ndarray:
    """Feature vector of one sensor window (length ``N_FEATURES``).

    Handles degenerate windows: an empty window yields all-NaN; a
    single-element window has zero std/slope.  ``slope`` is the least-
    squares trend per sample, capturing rising/falling behaviour that
    plain moments miss.
    """
    out = np.empty(N_FEATURES, dtype=np.float64)
    n = len(values)
    if n == 0:
        out[:] = np.nan
        return out
    v = np.asarray(values, dtype=np.float64)
    out[0] = v.mean()
    out[1] = v.std() if n > 1 else 0.0
    out[2] = v.min()
    out[3] = v.max()
    out[4] = v[-1]
    out[5] = float(np.median(v))
    if n > 1:
        x = np.arange(n, dtype=np.float64)
        x -= x.mean()
        denom = float(x @ x)
        out[6] = float(x @ (v - out[0])) / denom if denom else 0.0
    else:
        out[6] = 0.0
    out[7], out[8] = np.percentile(v, (25.0, 75.0))
    return out


def feature_matrix(windows: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate per-sensor feature vectors into one flat vector.

    The regressor builds its model input this way: one window per input
    sensor, features concatenated in sensor order.
    """
    return np.concatenate([window_features(w) for w in windows])


def quantiles(values: np.ndarray, qs: Sequence[float]) -> np.ndarray:
    """Quantiles of a value set, NaN-safe (all-NaN windows yield NaN)."""
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        return np.full(len(qs), np.nan)
    finite = v[np.isfinite(v)]
    if finite.size == 0:
        return np.full(len(qs), np.nan)
    return np.percentile(finite, np.asarray(qs) * 100.0)


def deciles(values: np.ndarray) -> np.ndarray:
    """The 11 deciles 0..10 (min, d1..d9, max) — PerSyst's aggregate."""
    return quantiles(values, [i / 10.0 for i in range(11)])


class StreamingStats:
    """Welford accumulator for mean/variance plus min/max/count.

    Numerically stable single-pass aggregation, used by the aggregator
    plugin when no bounded window is configured.
    """

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum", "last")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.last = math.nan

    def push(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.last = value

    def push_many(self, values: np.ndarray) -> None:
        """Fold a batch of observations."""
        for v in np.asarray(values, dtype=np.float64):
            self.push(float(v))

    @property
    def mean(self) -> float:
        """Running mean (NaN when empty)."""
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Population variance (NaN when empty)."""
        return self._m2 / self.count if self.count else math.nan

    @property
    def std(self) -> float:
        """Population standard deviation (NaN when empty)."""
        var = self.variance
        return math.sqrt(var) if not math.isnan(var) else math.nan

    def merge(self, other: "StreamingStats") -> "StreamingStats":
        """Combine two accumulators (parallel aggregation)."""
        merged = StreamingStats()
        merged.count = self.count + other.count
        if merged.count == 0:
            return merged
        delta = other._mean - self._mean
        merged._mean = (
            self._mean * self.count + other._mean * other.count
        ) / merged.count
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / merged.count
        )
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        merged.last = other.last if other.count else self.last
        return merged
