"""Prediction error metrics for the evaluation harness.

Fig 6 reports the average relative error of the power predictor and a
per-power-bin relative error profile with the fitted probability density
of the real power values; these functions compute exactly those rows.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Tuple

import numpy as np


def relative_error(actual: np.ndarray, predicted: np.ndarray) -> np.ndarray:
    """Element-wise ``|pred - actual| / |actual|`` (NaN where actual=0)."""
    actual = np.asarray(actual, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    if actual.shape != predicted.shape:
        raise ValueError(
            f"shape mismatch: {actual.shape} vs {predicted.shape}"
        )
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.abs(predicted - actual) / np.abs(actual)
    out[~np.isfinite(out)] = np.nan
    return out


def mean_relative_error(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Average relative error, ignoring undefined (zero-actual) points."""
    err = relative_error(actual, predicted)
    finite = err[np.isfinite(err)]
    return float(finite.mean()) if finite.size else float("nan")


class BinnedErrorProfile(NamedTuple):
    """Per-bin relative error + data density (the Fig 6b panels).

    Attributes:
        bin_centers: centre of each value bin.
        mean_error: average relative error of points in the bin (NaN for
            empty bins).
        density: fraction of observations falling in the bin.
        counts: raw observation counts per bin.
    """

    bin_centers: np.ndarray
    mean_error: np.ndarray
    density: np.ndarray
    counts: np.ndarray


def confusion_matrix(
    actual: np.ndarray, predicted: np.ndarray, n_classes: Optional[int] = None
) -> np.ndarray:
    """Confusion matrix ``M[i, j]`` = count of class-``i`` samples
    predicted as class ``j`` (for the classifier plugin's evaluation)."""
    actual = np.asarray(actual, dtype=np.int64)
    predicted = np.asarray(predicted, dtype=np.int64)
    if actual.shape != predicted.shape:
        raise ValueError(
            f"shape mismatch: {actual.shape} vs {predicted.shape}"
        )
    if actual.size and (actual.min() < 0 or predicted.min() < 0):
        raise ValueError("class labels must be non-negative")
    k = n_classes
    if k is None:
        k = int(max(actual.max(initial=0), predicted.max(initial=0))) + 1
    matrix = np.zeros((k, k), dtype=np.int64)
    np.add.at(matrix, (actual, predicted), 1)
    return matrix


def classification_accuracy(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Fraction of samples classified correctly (NaN when empty)."""
    actual = np.asarray(actual)
    predicted = np.asarray(predicted)
    if actual.shape != predicted.shape:
        raise ValueError(
            f"shape mismatch: {actual.shape} vs {predicted.shape}"
        )
    if actual.size == 0:
        return float("nan")
    return float((actual == predicted).mean())


def binned_relative_error(
    actual: np.ndarray,
    predicted: np.ndarray,
    n_bins: int = 20,
    value_range: Optional[Tuple[float, float]] = None,
) -> BinnedErrorProfile:
    """Relative error profile over bins of the *actual* value.

    Mirrors Fig 6b: error is grouped by the real power value, exposing
    that rare high/low-power bins predict worse while the bulk sits
    around the headline average.
    """
    actual = np.asarray(actual, dtype=np.float64)
    err = relative_error(actual, predicted)
    lo, hi = value_range if value_range else (actual.min(), actual.max())
    if hi <= lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, n_bins + 1)
    idx = np.clip(np.digitize(actual, edges) - 1, 0, n_bins - 1)
    counts = np.bincount(idx, minlength=n_bins)
    sums = np.bincount(idx, weights=np.nan_to_num(err), minlength=n_bins)
    valid = np.bincount(idx, weights=np.isfinite(err).astype(float), minlength=n_bins)
    with np.errstate(divide="ignore", invalid="ignore"):
        mean_error = sums / valid
    mean_error[valid == 0] = np.nan
    centers = (edges[:-1] + edges[1:]) / 2.0
    density = counts / max(1, counts.sum())
    return BinnedErrorProfile(centers, mean_error, density, counts)
