"""From-scratch ML substrate.

The paper's plugins lean on OpenCV random forests and a Bayesian
Gaussian mixture model; this package reimplements both on NumPy/SciPy,
plus the statistical feature extraction and error metrics the case
studies use:

- :mod:`repro.ml.stats` -- window statistics / feature vectors,
  quantiles, streaming accumulators.
- :mod:`repro.ml.tree` -- CART decision trees (regression and
  classification).
- :mod:`repro.ml.forest` -- random forests over those trees.
- :mod:`repro.ml.bgmm` -- variational Bayesian Gaussian mixture with
  automatic effective component count and outlier scoring.
- :mod:`repro.ml.metrics` -- relative error and binned error profiles.
"""

from repro.ml.stats import (
    FEATURE_NAMES,
    window_features,
    quantiles,
    deciles,
    StreamingStats,
)
from repro.ml.tree import DecisionTreeRegressor, DecisionTreeClassifier
from repro.ml.forest import RandomForestRegressor, RandomForestClassifier
from repro.ml.bgmm import BayesianGaussianMixture
from repro.ml.metrics import (
    relative_error,
    mean_relative_error,
    binned_relative_error,
    confusion_matrix,
    classification_accuracy,
)

__all__ = [
    "FEATURE_NAMES",
    "window_features",
    "quantiles",
    "deciles",
    "StreamingStats",
    "DecisionTreeRegressor",
    "DecisionTreeClassifier",
    "RandomForestRegressor",
    "RandomForestClassifier",
    "BayesianGaussianMixture",
    "relative_error",
    "mean_relative_error",
    "binned_relative_error",
    "confusion_matrix",
    "classification_accuracy",
]
