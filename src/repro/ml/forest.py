"""Random forests over the CART trees.

Standard Breiman construction: each tree fits a bootstrap resample with
per-split random feature subsets; the ensemble prediction is the mean
(regression) or probability-averaged argmax (classification).  This is
the stand-in for the OpenCV random forests behind the paper's regressor
plugin.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


class _BaseForest:
    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: int = 12,
        min_samples_leaf: int = 2,
        max_features: Optional[str] = "sqrt",
        bootstrap: bool = True,
        random_state: Optional[int] = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1: {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self._rng = np.random.default_rng(random_state)
        self.trees_: list = []

    def _n_features_try(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if self.max_features == "third":
            return max(1, n_features // 3)
        if isinstance(self.max_features, int):
            return max(1, min(self.max_features, n_features))
        raise ValueError(f"bad max_features: {self.max_features!r}")

    def _make_tree(self, n_features: int, seed: int):
        raise NotImplementedError

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_BaseForest":
        """Fit the ensemble on ``(X, y)``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.trees_ = []
        n = len(X)
        for _ in range(self.n_estimators):
            seed = int(self._rng.integers(0, 2**63 - 1))
            tree = self._make_tree(X.shape[1], seed)
            if self.bootstrap:
                idx = self._rng.integers(0, n, size=n)
                tree.fit(X[idx], y[idx])
            else:
                tree.fit(X, y)
            self.trees_.append(tree)
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether the ensemble has been trained."""
        return bool(self.trees_)

    def feature_importances(self) -> np.ndarray:
        """Split-frequency feature importances, normalised to sum to 1.

        Counts how often each feature is chosen as a split across the
        ensemble — a cheap, model-intrinsic attribution that answers
        "which sensors does the model actually use?" for the regressor
        and classifier plugins.
        """
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        n_features = self.trees_[0].n_features_
        counts = np.zeros(n_features)
        for tree in self.trees_:
            used = tree.feature_[tree.feature_ >= 0]
            counts += np.bincount(used, minlength=n_features)
        total = counts.sum()
        return counts / total if total else counts


class RandomForestRegressor(_BaseForest):
    """Bootstrap-aggregated regression trees."""

    def _make_tree(self, n_features: int, seed: int) -> DecisionTreeRegressor:
        return DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self._n_features_try(n_features),
            random_state=seed,
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean prediction across trees."""
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        preds = np.stack([t.predict(X) for t in self.trees_])
        return preds.mean(axis=0)


class RandomForestClassifier(_BaseForest):
    """Bootstrap-aggregated classification trees (probability voting)."""

    def __init__(self, n_classes: Optional[int] = None, **kwargs) -> None:
        super().__init__(**kwargs)
        self.n_classes = n_classes

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        y = np.asarray(y, dtype=np.int64)
        if self.n_classes is None and y.size:
            # Fix the class count up front so bootstrap resamples that
            # miss a class still produce aligned probability vectors.
            self.n_classes = int(y.max()) + 1
        return super().fit(X, y)

    def _make_tree(self, n_features: int, seed: int) -> DecisionTreeClassifier:
        return DecisionTreeClassifier(
            n_classes=self.n_classes,
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self._n_features_try(n_features),
            random_state=seed,
        )

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Mean class probabilities across trees."""
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        probs = np.stack([t.predict_proba(X) for t in self.trees_])
        return probs.mean(axis=0)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class per sample."""
        return np.argmax(self.predict_proba(X), axis=1)
