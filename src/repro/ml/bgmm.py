"""Variational Bayesian Gaussian mixture model.

The clustering case study (Section VI-D) adopts a Bayesian Gaussian
mixture because "unlike ordinary gaussian mixture models, they are able
to determine autonomously the optimal number of clusters from data":
the Dirichlet prior over mixture weights lets superfluous components
collapse to negligible weight.

This is the standard mean-field variational treatment (Bishop, PRML
§10.2): Dirichlet prior on weights, Gaussian–Wishart priors on the
component parameters, alternating the responsibility update (E-step)
with the posterior parameter updates (M-step).  Outlier scoring follows
the paper: a point is an outlier when its probability is below a
threshold under the PDFs of *all* fitted (effective) components.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.linalg import solve_triangular
from scipy.special import digamma

_LOG_2PI = np.log(2.0 * np.pi)


class BayesianGaussianMixture:
    """Mean-field variational Bayesian GMM with full covariances.

    Args:
        n_components: upper bound on mixture components; the variational
            posterior prunes unused ones.
        weight_concentration_prior: Dirichlet concentration ``alpha_0``;
            small values (default ``1/n_components``) encourage sparse
            mixtures.
        max_iter / tol: VB iteration limit and convergence threshold on
            the mean absolute responsibility change.
        reg_covar: jitter added to covariance diagonals.
        random_state: seed for the k-means-style initialisation.
    """

    def __init__(
        self,
        n_components: int = 8,
        weight_concentration_prior: Optional[float] = None,
        max_iter: int = 200,
        tol: float = 1e-4,
        reg_covar: float = 1e-6,
        random_state: Optional[int] = None,
    ) -> None:
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1: {n_components}")
        self.n_components = n_components
        self.alpha0 = (
            weight_concentration_prior
            if weight_concentration_prior is not None
            else 1.0 / n_components
        )
        self.max_iter = max_iter
        self.tol = tol
        self.reg_covar = reg_covar
        self._rng = np.random.default_rng(random_state)
        self._fitted = False

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def _kmeans_init(self, X: np.ndarray) -> np.ndarray:
        """Hard-assignment initial responsibilities via mini k-means."""
        n, _ = X.shape
        k = self.n_components
        centers = X[self._rng.choice(n, size=min(k, n), replace=False)]
        if len(centers) < k:  # fewer points than components
            extra = centers[self._rng.integers(0, len(centers), k - len(centers))]
            centers = np.vstack([centers, extra + 1e-6])
        labels = np.zeros(n, dtype=np.int64)
        for _ in range(10):
            d2 = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            new_labels = np.argmin(d2, axis=1)
            if np.array_equal(new_labels, labels):
                break
            labels = new_labels
            for j in range(k):
                mask = labels == j
                if mask.any():
                    centers[j] = X[mask].mean(axis=0)
        resp = np.full((n, k), 1e-10)
        resp[np.arange(n), labels] = 1.0
        return resp / resp.sum(axis=1, keepdims=True)

    def fit(self, X: np.ndarray) -> "BayesianGaussianMixture":
        """Fit the variational posterior on data ``X`` of shape (N, D)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or len(X) == 0:
            raise ValueError(f"X must be a non-empty 2-D array, got {X.shape}")
        n, d = X.shape
        k = self.n_components
        # Priors: data-scaled Wishart keeps the model unit-agnostic.
        self._beta0 = 1.0
        self._m0 = X.mean(axis=0)
        self._nu0 = float(d)
        data_cov = np.cov(X.T) if n > 1 else np.eye(d)
        data_cov = np.atleast_2d(data_cov) + self.reg_covar * np.eye(d)
        self._w0_inv = data_cov * self._nu0

        resp = self._kmeans_init(X)
        for _ in range(self.max_iter):
            self._m_step(X, resp)
            new_resp = self._e_step(X)
            delta = float(np.abs(new_resp - resp).mean())
            resp = new_resp
            if delta < self.tol:
                break
        self._m_step(X, resp)
        self.responsibilities_ = resp
        self.weights_ = self._alpha / self._alpha.sum()
        self.means_ = self._m.copy()
        # Posterior expectation of each component covariance.
        covs = np.empty((k, d, d))
        for j in range(k):
            denom = self._nu[j] - d - 1.0
            scale = denom if denom > 1e-3 else self._nu[j]
            covs[j] = self._w_inv[j] / scale + self.reg_covar * np.eye(d)
        self.covariances_ = covs
        self._fitted = True
        return self

    def _m_step(self, X: np.ndarray, resp: np.ndarray) -> None:
        n, d = X.shape
        k = self.n_components
        nk = resp.sum(axis=0) + 1e-10
        xbar = (resp.T @ X) / nk[:, None]
        self._alpha = self.alpha0 + nk
        self._beta = self._beta0 + nk
        self._nu = self._nu0 + nk
        self._m = (self._beta0 * self._m0[None, :] + nk[:, None] * xbar) / (
            self._beta[:, None]
        )
        self._w_inv = np.empty((k, d, d))
        for j in range(k):
            diff = X - xbar[j]
            sk = (resp[:, j][:, None] * diff).T @ diff / nk[j]
            dm = (xbar[j] - self._m0)[:, None]
            self._w_inv[j] = (
                self._w0_inv
                + nk[j] * sk
                + (self._beta0 * nk[j] / (self._beta0 + nk[j])) * (dm @ dm.T)
                + self.reg_covar * np.eye(d)
            )

    def _expected_log_det(self, j: int, d: int) -> float:
        sign, logdet_winv = np.linalg.slogdet(self._w_inv[j])
        log_det_w = -logdet_winv  # |W| = 1/|W^-1|
        return float(
            digamma((self._nu[j] - np.arange(d)) / 2.0).sum()
            + d * np.log(2.0)
            + log_det_w
        )

    def _e_step(self, X: np.ndarray) -> np.ndarray:
        n, d = X.shape
        k = self.n_components
        log_pi = digamma(self._alpha) - digamma(self._alpha.sum())
        log_rho = np.empty((n, k))
        for j in range(k):
            diff = X - self._m[j]
            # nu_j * (x-m)^T W_j (x-m) via a solve against W^-1.
            solved = np.linalg.solve(self._w_inv[j], diff.T).T
            quad = self._nu[j] * np.einsum("ij,ij->i", diff, solved)
            log_lambda = self._expected_log_det(j, d)
            log_rho[:, j] = (
                log_pi[j]
                + 0.5 * log_lambda
                - 0.5 * d / self._beta[j]
                - 0.5 * quad
                - 0.5 * d * _LOG_2PI
            )
        log_rho -= log_rho.max(axis=1, keepdims=True)
        rho = np.exp(log_rho)
        return rho / rho.sum(axis=1, keepdims=True)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("model is not fitted")

    def effective_components(self, weight_threshold: float = 0.02) -> np.ndarray:
        """Indices of components carrying non-negligible weight.

        This is the "autonomously determined" cluster count: components
        pruned by the Dirichlet posterior fall below the threshold.
        """
        self._require_fitted()
        return np.nonzero(self.weights_ >= weight_threshold)[0]

    def component_log_pdf(self, X: np.ndarray) -> np.ndarray:
        """Log density of every point under every component, (N, K)."""
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        n, d = X.shape
        out = np.empty((n, self.n_components))
        for j in range(self.n_components):
            chol = np.linalg.cholesky(self.covariances_[j])
            diff = X - self.means_[j]
            z = solve_triangular(chol, diff.T, lower=True)
            quad = (z**2).sum(axis=0)
            logdet = 2.0 * np.log(np.diag(chol)).sum()
            out[:, j] = -0.5 * (d * _LOG_2PI + logdet + quad)
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most responsible component per point (weighted by posterior
        mixture weights)."""
        log_pdf = self.component_log_pdf(X)
        return np.argmax(log_pdf + np.log(self.weights_ + 1e-300), axis=1)

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        """Log mixture density per point."""
        log_pdf = self.component_log_pdf(X) + np.log(self.weights_ + 1e-300)
        m = log_pdf.max(axis=1, keepdims=True)
        return (m + np.log(np.exp(log_pdf - m).sum(axis=1, keepdims=True)))[:, 0]

    def outlier_mask(
        self,
        X: np.ndarray,
        pdf_threshold: float = 1e-3,
        weight_threshold: float = 0.02,
    ) -> np.ndarray:
        """Points below ``pdf_threshold`` under *all* effective
        components' PDFs — the paper's outlier rule (threshold 0.001)."""
        comps = self.effective_components(weight_threshold)
        log_pdf = self.component_log_pdf(X)[:, comps]
        return np.all(log_pdf < np.log(pdf_threshold), axis=1)
