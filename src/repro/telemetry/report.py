"""Overhead reporting from live telemetry counters.

The paper's Fig 5 study quantifies Wintermute's footprint: what fraction
of a core the Query Engine and operator computations consume per
analysis interval.  The seed reproduced that with bespoke benchmark
timing; with the telemetry registry the same quantities fall out of the
live counters any running deployment accrues — no dedicated harness
required.  :func:`overhead_report` distils a host registry into the Fig
5 measurements; :func:`format_overhead_report` renders them for the
``wintermute-sim metrics --report`` CLI path.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.telemetry.registry import Counter, Gauge, Histogram, MetricRegistry


def _counter_value(registry: MetricRegistry, name: str, **labels) -> int:
    metric = registry.get(name, **labels)
    if isinstance(metric, Counter):
        return metric.value
    return 0


def _histogram_summary(hist: Histogram) -> dict:
    return {
        "count": hist.count,
        "sum_ns": hist.sum,
        "mean_ns": hist.mean if hist.count else None,
        "p50_ns": hist.quantile(0.5) if hist.count else None,
        "p99_ns": hist.quantile(0.99) if hist.count else None,
    }


def overhead_report(
    registry: MetricRegistry, elapsed_ns: Optional[int] = None
) -> dict:
    """Summarise a host registry into Fig 5-style overhead numbers.

    Args:
        registry: a host's metric registry.
        elapsed_ns: observed wall/simulated span; when given, busy
            counters are also expressed as a percentage of one core
            over that span (the paper's overhead metric).
    """
    report: dict = {
        "sampling_busy_ns": _counter_value(registry, "sampling_busy_ns_total"),
        "analytics_busy_ns": _counter_value(
            registry, "analytics_busy_ns_total"
        ),
        "query_engine": {
            "cache_hits": _counter_value(registry, "qe_cache_hits_total"),
            "storage_fallbacks": _counter_value(
                registry, "qe_storage_fallbacks_total"
            ),
            "misses": _counter_value(registry, "qe_misses_total"),
        },
        "query_latency": {},
        "operators": [],
        "gauges": {},
    }
    for metric in registry.collect():
        if isinstance(metric, Histogram):
            if metric.name == "qe_query_latency_ns":
                mode = metric.labels.get("mode", "all")
                report["query_latency"][mode] = _histogram_summary(metric)
            elif metric.name == "operator_compute_latency_ns":
                entry = {"operator": metric.labels.get("operator", "?")}
                entry.update(_histogram_summary(metric))
                report["operators"].append(entry)
        elif isinstance(metric, Gauge) and metric.name.startswith("cache_"):
            report["gauges"][metric.name] = metric.value
    report["operators"].sort(key=lambda e: e["operator"])
    if elapsed_ns and elapsed_ns > 0:
        report["elapsed_ns"] = int(elapsed_ns)
        report["sampling_overhead_pct"] = (
            report["sampling_busy_ns"] / elapsed_ns * 100.0
        )
        report["analytics_overhead_pct"] = (
            report["analytics_busy_ns"] / elapsed_ns * 100.0
        )
    return report


def _fmt_ns(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1e9:
        return f"{value / 1e9:.2f}s"
    if value >= 1e6:
        return f"{value / 1e6:.2f}ms"
    if value >= 1e3:
        return f"{value / 1e3:.1f}us"
    return f"{value:.0f}ns"


def format_overhead_report(report: dict, name: str = "host") -> str:
    """Render an :func:`overhead_report` dict as readable text."""
    lines: List[str] = [f"# Telemetry overhead report — {name}"]
    if "elapsed_ns" in report:
        lines.append(
            f"observed span: {report['elapsed_ns'] / 1e9:.1f}s; "
            f"sampling {report['sampling_overhead_pct']:.3f}% of one core, "
            f"analytics {report['analytics_overhead_pct']:.3f}%"
        )
    else:
        lines.append(
            f"sampling busy {_fmt_ns(report['sampling_busy_ns'])}, "
            f"analytics busy {_fmt_ns(report['analytics_busy_ns'])}"
        )
    qe = report["query_engine"]
    total = qe["cache_hits"] + qe["storage_fallbacks"] + qe["misses"]
    if total:
        lines.append(
            f"queries: {total} total — {qe['cache_hits']} cache hits "
            f"({qe['cache_hits'] / total * 100:.1f}%), "
            f"{qe['storage_fallbacks']} storage fallbacks, "
            f"{qe['misses']} misses"
        )
    for mode, summary in sorted(report["query_latency"].items()):
        if not summary["count"]:
            continue
        lines.append(
            f"  {mode} latency: mean {_fmt_ns(summary['mean_ns'])}, "
            f"p50 <= {_fmt_ns(summary['p50_ns'])}, "
            f"p99 <= {_fmt_ns(summary['p99_ns'])} "
            f"({summary['count']} queries)"
        )
    if report["operators"]:
        lines.append("operators:")
        for entry in report["operators"]:
            lines.append(
                f"  {entry['operator']}: {entry['count']} computes, "
                f"mean {_fmt_ns(entry['mean_ns'])}, "
                f"p99 <= {_fmt_ns(entry['p99_ns'])}"
            )
    gauges: Dict[str, float] = report.get("gauges", {})
    if gauges:
        parts = [f"{k}={v:.0f}" for k, v in sorted(gauges.items())]
        lines.append("caches: " + ", ".join(parts))
    return "\n".join(lines)
