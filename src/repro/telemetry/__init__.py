"""First-class telemetry for the Wintermute reproduction.

One :class:`MetricRegistry` exists per DCDB host; every layer — the
sampling loop, the MQTT drain, the Query Engine, Wintermute operators,
the sensor caches — registers counters, gauges and fixed-bucket latency
histograms in it.  The registry is exposed over ``GET /metrics`` (JSON
or Prometheus text exposition) on each host's REST API and summarised
into Fig 5-style overhead reports by :mod:`repro.telemetry.report`.
"""

from repro.telemetry.registry import (
    LATENCY_BUCKETS_NS,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricRegistry,
    time_histogram,
)
from repro.telemetry.exposition import (
    PROMETHEUS_CONTENT_TYPE,
    metrics_handler,
    register_metrics_route,
    render_prometheus,
)
from repro.telemetry.report import format_overhead_report, overhead_report

__all__ = [
    "LATENCY_BUCKETS_NS",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "format_overhead_report",
    "metrics_handler",
    "overhead_report",
    "register_metrics_route",
    "render_prometheus",
    "time_histogram",
]
