"""The metric registry: counters, gauges and latency histograms.

Wintermute's evaluation (Fig 5, Section VI-A) is a *self-measurement*
exercise: the framework must be able to report its own query latency,
cache behaviour and operator overhead while running.  The follow-up
deployment experience ("Operational Data Analytics in Practice") makes
the same point operationally — an ODA stack that cannot observe itself
cannot be trusted in production.  This module is the substrate for that:
a process-local registry of named metrics every DCDB component writes
into and the REST ``/metrics`` route reads out of.

Three metric types exist, mirroring the Prometheus data model:

- :class:`Counter` — a monotonically increasing value (events, spent
  nanoseconds).  Decrementing is a programming error.
- :class:`Gauge` — a value that goes up and down (queue depth, cache
  occupancy).  A gauge may instead be backed by a *callback* evaluated
  at collection time, which keeps hot paths free of bookkeeping: the
  cost is paid by the scraper, not the writer.
- :class:`Histogram` — a fixed-bucket latency/size distribution.  The
  bucket layout is chosen at creation; observing a sample is one bisect
  plus three integer updates and never allocates, so it is safe on the
  per-query hot path.

Metrics are identified by a name plus a set of key=value labels, so one
logical metric (say ``operator_compute_latency_ns``) fans out into one
series per operator.  ``counter()`` / ``gauge()`` / ``histogram()`` are
get-or-create: asking twice for the same (name, labels) returns the same
object, which lets independent components share series safely.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.sanitizer import hooks

#: Default latency bucket upper bounds in nanoseconds: a 1-10 decade
#: ladder from 1 us to 10 s.  Fine enough to separate the paper's O(1)
#: relative path from the O(log N) absolute path, coarse enough that a
#: histogram is ~20 machine words.
LATENCY_BUCKETS_NS: Tuple[int, ...] = (
    1_000,           # 1 us
    10_000,          # 10 us
    100_000,         # 100 us
    1_000_000,       # 1 ms
    10_000_000,      # 10 ms
    100_000_000,     # 100 ms
    1_000_000_000,   # 1 s
    10_000_000_000,  # 10 s
)

LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, str]) -> LabelsKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Common identity of all metric types."""

    kind = "untyped"
    __slots__ = ("name", "labels")

    def __init__(self, name: str, labels: Dict[str, str]):
        self.name = name
        self.labels = dict(labels)

    def sample(self) -> dict:
        """JSON-able snapshot of this series (overridden per type)."""
        raise NotImplementedError

    def _ident(self) -> dict:
        return {"name": self.name, "type": self.kind, "labels": dict(self.labels)}


class Counter(Metric):
    """A monotonically increasing value."""

    kind = "counter"
    __slots__ = ("_value",)

    def __init__(self, name: str, labels: Dict[str, str]):
        super().__init__(name, labels)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease: {amount}")
        self._value += amount

    @property
    def value(self) -> int:
        """Current count."""
        return self._value

    def sample(self) -> dict:
        return {**self._ident(), "value": self._value}


class Gauge(Metric):
    """A value that can go up and down, or a collection-time callback."""

    kind = "gauge"
    __slots__ = ("_value", "_fn")

    def __init__(
        self,
        name: str,
        labels: Dict[str, str],
        fn: Optional[Callable[[], float]] = None,
    ):
        super().__init__(name, labels)
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        """Set the gauge (not available on callback gauges)."""
        if self._fn is not None:
            raise ValueError(f"gauge {self.name} is callback-backed")
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge."""
        self.set(self._value + amount)

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.set(self._value - amount)

    @property
    def value(self) -> float:
        """Current value (callback gauges evaluate their function)."""
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def sample(self) -> dict:
        return {**self._ident(), "value": self.value}


class Histogram(Metric):
    """Fixed-bucket distribution with count/sum/min/max.

    ``bounds`` are the inclusive upper edges of the buckets; one
    implicit overflow bucket (+Inf) is always appended.  ``observe`` is
    allocation-free: a bisect into the precomputed bounds and integer
    bumps on a plain list.
    """

    kind = "histogram"
    __slots__ = ("_bounds", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(
        self,
        name: str,
        labels: Dict[str, str],
        buckets: Iterable[float] = LATENCY_BUCKETS_NS,
    ):
        super().__init__(name, labels)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one sample."""
        # bisect_left keeps the Prometheus `le` contract: a sample equal
        # to a bucket's upper edge belongs to that bucket, not the next.
        self._counts[bisect_left(self._bounds, value)] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram (same bucket layout) into this one."""
        if other._bounds != self._bounds:
            raise ValueError(
                f"histogram {self.name}: incompatible bucket layouts"
            )
        for i, c in enumerate(other._counts):
            self._counts[i] += c
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    @property
    def count(self) -> int:
        """Total number of observed samples."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed samples."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean observed sample (NaN when empty)."""
        if not self._count:
            return float("nan")
        return self._sum / self._count

    @property
    def bounds(self) -> List[float]:
        """Bucket upper edges (excluding the implicit +Inf)."""
        return list(self._bounds)

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts, overflow last."""
        return list(self._counts)

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style (upper-edge, cumulative-count) pairs."""
        out = []
        acc = 0
        for bound, c in zip(self._bounds, self._counts):
            acc += c
            out.append((bound, acc))
        out.append((float("inf"), self._count))
        return out

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket layout (upper edge of
        the bucket holding the q-th sample; NaN when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        if not self._count:
            return float("nan")
        rank = q * self._count
        acc = 0
        for bound, c in zip(self._bounds, self._counts):
            acc += c
            if acc >= rank:
                return bound
        return self._max

    def sample(self) -> dict:
        return {
            **self._ident(),
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else None,
            "max": self._max if self._count else None,
            "buckets": [
                {"le": bound, "count": c}
                for bound, c in self.cumulative_buckets()
            ],
        }


class _TimerContext:
    """``with histogram.time():`` — observes elapsed ns on exit."""

    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: Histogram):
        self._hist = hist
        self._t0 = 0

    def __enter__(self) -> "_TimerContext":
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        self._hist.observe(time.perf_counter_ns() - self._t0)


def time_histogram(hist: Histogram) -> _TimerContext:
    """Context manager observing its block's wall time (ns) into ``hist``."""
    return _TimerContext(hist)


class MetricRegistry:
    """Process-local collection of metrics, keyed by (name, labels).

    One registry exists per DCDB host (Pusher or Collect Agent); every
    component attached to that host — monitoring plugins, the Query
    Engine, Wintermute operators — writes into it, and the host's
    ``GET /metrics`` REST route reads it back out.  Components that are
    not (yet) attached to a host fall back to a private registry so
    instrumentation never needs a null check.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelsKey], Metric] = {}
        # Guards the *structure* of the registry (which series exist):
        # components register from sampling/worker threads while the
        # REST scraper collects.  Individual metric updates (inc,
        # observe) stay lock-free on the hot path.
        self._lock = hooks.make_lock("MetricRegistry")

    # -- creation ------------------------------------------------------

    def _get_or_create(self, cls, name: str, labels: Dict[str, str], **kw):
        key = (name, _labels_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = self._metrics[key] = cls(name, labels, **kw)
        if not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create a counter series."""
        return self._get_or_create(Counter, name, labels)

    def gauge(
        self,
        name: str,
        fn: Optional[Callable[[], float]] = None,
        **labels: str,
    ) -> Gauge:
        """Get or create a gauge series (optionally callback-backed)."""
        gauge = self._get_or_create(Gauge, name, labels)
        if fn is not None:
            gauge._fn = fn
        return gauge

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = LATENCY_BUCKETS_NS,
        **labels: str,
    ) -> Histogram:
        """Get or create a histogram series with ``buckets`` edges."""
        return self._get_or_create(Histogram, name, labels, buckets=buckets)

    # -- absorption ----------------------------------------------------

    def absorb(self, other: "MetricRegistry") -> None:
        """Fold another registry's accrued values into this one.

        Used when a component that instrumented itself against a private
        registry is later bound to a host: pre-bind counts carry over
        instead of silently resetting.
        """
        for (name, key), metric in list(other._metrics.items()):
            if isinstance(metric, Counter):
                self.counter(name, **metric.labels).inc(metric.value)
            elif isinstance(metric, Histogram):
                mine = self.histogram(
                    name, buckets=metric.bounds, **metric.labels
                )
                mine.merge(metric)
            elif isinstance(metric, Gauge):
                mine = self.gauge(name, fn=metric._fn, **metric.labels)
                if metric._fn is None:
                    mine.set(metric.value)

    # -- collection ----------------------------------------------------

    def collect(self) -> List[Metric]:
        """All registered series, sorted by (name, labels)."""
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def get(self, name: str, **labels: str) -> Optional[Metric]:
        """Look up one series, or None."""
        with self._lock:
            return self._metrics.get((name, _labels_key(labels)))

    def snapshot(self) -> List[dict]:
        """JSON-able samples of every series (the /metrics JSON body)."""
        return [m.sample() for m in self.collect()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return any(n == name for n, _ in self._metrics)
