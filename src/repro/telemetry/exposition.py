"""Metric exposition: Prometheus text format and the /metrics route.

Every DCDB component already exposes a REST control surface
(:mod:`repro.dcdb.restapi`); telemetry rides the same server.  The
``GET /metrics`` route serves two representations:

- **JSON** (default): the registry snapshot as a list of series dicts —
  convenient for the CLI, tests and programmatic consumers.
- **Prometheus text exposition** (``?format=prometheus``): the 0.0.4
  plain-text format, so a real scraper pointed at a bridged endpoint
  would ingest it unchanged.  Since :class:`~repro.dcdb.restapi
  .RestResponse` bodies are dicts, the rendered page travels in the
  ``exposition`` key next to its ``content_type``.

A ``match`` query parameter filters series by a regular expression on
the metric name, mirroring Prometheus' federation parameter.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, List, Optional

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricRegistry,
)

if TYPE_CHECKING:  # avoids a circular import with repro.dcdb at runtime
    from repro.dcdb.restapi import RestApi, RestRequest, RestResponse

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4"

_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape_label_value(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in str(value))


def _label_str(labels: dict, extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _format_number(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(
    registry: MetricRegistry, match: Optional[str] = None
) -> str:
    """Render a registry in the Prometheus text exposition format."""
    pattern = re.compile(match) if match else None
    lines: List[str] = []
    seen_types = set()
    for metric in registry.collect():
        if pattern is not None and not pattern.search(metric.name):
            continue
        if metric.name not in seen_types:
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            seen_types.add(metric.name)
        lines.extend(_render_metric(metric))
    return "\n".join(lines) + ("\n" if lines else "")


def _render_metric(metric: Metric) -> List[str]:
    if isinstance(metric, (Counter, Gauge)):
        return [
            f"{metric.name}{_label_str(metric.labels)} "
            f"{_format_number(metric.value)}"
        ]
    if isinstance(metric, Histogram):
        lines = []
        for bound, count in metric.cumulative_buckets():
            le = _label_str(metric.labels, {"le": _format_number(bound)})
            lines.append(f"{metric.name}_bucket{le} {count}")
        labels = _label_str(metric.labels)
        lines.append(f"{metric.name}_sum{labels} {_format_number(metric.sum)}")
        lines.append(f"{metric.name}_count{labels} {metric.count}")
        return lines
    return []


def metrics_handler(registry: MetricRegistry):
    """Build the GET /metrics route handler over ``registry``."""
    from repro.dcdb.restapi import RestResponse

    def handle(request: "RestRequest") -> "RestResponse":
        match = request.param("match")
        if match is not None:
            try:
                re.compile(match)
            except re.error as exc:
                return RestResponse.error(f"bad match pattern: {exc}", 400)
        fmt = request.param("format", "json")
        if fmt in ("prometheus", "text"):
            return RestResponse.json(
                {
                    "content_type": PROMETHEUS_CONTENT_TYPE,
                    "exposition": render_prometheus(registry, match),
                }
            )
        if fmt != "json":
            return RestResponse.error(
                f"unknown format {fmt!r} (json|prometheus)", 400
            )
        pattern = re.compile(match) if match else None
        samples = [
            s
            for s in registry.snapshot()
            if pattern is None or pattern.search(s["name"])
        ]
        return RestResponse.json({"metrics": samples})

    return handle


def register_metrics_route(rest: "RestApi", registry: MetricRegistry) -> None:
    """Register ``GET /metrics`` serving ``registry`` on ``rest``."""
    rest.register("GET", "/metrics", metrics_handler(registry))
