"""Per-node power, thermal and idle-time model.

Produces the node-level signals the paper's case studies consume: whole
node power at the power supply (Fig 6), inlet/node temperature and the
cumulative CPU idle time counter (Fig 8).  Three effects matter for the
reproduction and are modelled explicitly:

- **Manufacturing variability**: each node draws a frozen efficiency
  factor, so identical workloads yield slightly different power — the
  spread Fig 8's clusters rely on.
- **Unpredictable short spikes**: turbo bursts and electrical/sensor
  noise make power prediction imperfect at the top of the distribution,
  which is exactly the error structure Fig 6b reports.
- **Thermal inertia**: temperature follows power through a first-order
  lag toward ``ambient + k * power``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.timeutil import NS_PER_SEC
from repro.simulator.workload import binned_uniform, value_noise


@dataclass(frozen=True)
class NodePowerParams:
    """Electrical and thermal constants of a node model.

    Defaults approximate a Xeon Phi 7210-F node: ~75 W idle, up to
    ~280 W under full vectorised load, temperatures in the high 40s to
    mid 50s Celsius (cf. Fig 8's axes).
    """

    idle_w: float = 75.0
    dynamic_w: float = 185.0
    turbo_w: float = 45.0
    turbo_probability: float = 0.06
    noise_w: float = 2.0
    ambient_c: float = 40.0
    c_per_watt: float = 0.065
    thermal_tau_s: float = 90.0


class NodeModel:
    """Stateful per-node electrical/thermal model.

    Args:
        node_path: component path, used only for diagnostics.
        n_cores: core count (drives the idle-time counter scale).
        seed: frozen randomness (efficiency factor, spike schedule).
        params: shared electrical constants.
        power_anomaly: multiplicative power factor for planted anomalies
            (Fig 8 discusses a node drawing ~20 % more power than peers
            with similar idle time; pass 1.2 to plant it).
    """

    def __init__(
        self,
        node_path: str,
        n_cores: int,
        seed: int,
        params: NodePowerParams = NodePowerParams(),
        power_anomaly: float = 1.0,
    ) -> None:
        self.node_path = node_path
        self.n_cores = int(n_cores)
        self.seed = int(seed)
        self.params = params
        self.power_anomaly = float(power_anomaly)
        rng = np.random.default_rng(seed)
        #: Frozen manufacturing-variability factor, ~N(1, 0.03).
        self.efficiency = float(np.clip(rng.normal(1.0, 0.03), 0.9, 1.1))
        #: Facility coupling: offset on the ambient (inlet) temperature,
        #: set by the cooling model when one is attached.
        self.ambient_offset_c = 0.0
        # Mutable state, advanced by update():
        self.temperature_c = params.ambient_c + 5.0
        self.energy_j = 0.0
        self.idle_time_s = 0.0
        self.power_w = params.idle_w * self.efficiency
        self._last_ts: int = -1

    # ------------------------------------------------------------------

    def instantaneous_power(self, t_s: float, activity: float) -> float:
        """Power draw at time ``t_s`` given scalar workload activity.

        ``activity`` is in [0, 1] (see ``AppInstance.activity``).  Adds
        turbo bursts and measurement noise on top of the deterministic
        idle + dynamic model.
        """
        p = self.params
        base = (p.idle_w + p.dynamic_w * activity) * self.efficiency
        # Turbo bursts: held for 1 s bins, only meaningful under load.
        roll = binned_uniform(self.seed, t_s, 1.0, 1, stream=11)[0]
        if activity > 0.3 and roll < p.turbo_probability:
            mag = binned_uniform(self.seed, t_s, 1.0, 1, stream=12)[0]
            base += p.turbo_w * (0.4 + 0.6 * mag)
        noise = p.noise_w * value_noise(self.seed, t_s, 0.5, 1, stream=13)[0]
        return max(0.0, (base + noise) * self.power_anomaly)

    def update(self, ts_ns: int, activity: float, mean_util: float) -> None:
        """Advance state to ``ts_ns``.

        Integrates energy and idle time over the elapsed interval and
        relaxes temperature toward its power-driven target.  Must be
        called with non-decreasing timestamps.
        """
        t_s = ts_ns / NS_PER_SEC
        self.power_w = self.instantaneous_power(t_s, activity)
        ambient = self.params.ambient_c + self.ambient_offset_c
        if self._last_ts < 0:
            self._last_ts = ts_ns
            self.temperature_c = ambient + self.params.c_per_watt * self.power_w
            return
        dt_s = (ts_ns - self._last_ts) / NS_PER_SEC
        if dt_s < 0:
            raise ValueError(f"node model time moved backwards on {self.node_path}")
        self._last_ts = ts_ns
        self.energy_j += self.power_w * dt_s
        self.idle_time_s += (1.0 - min(1.0, mean_util)) * self.n_cores * dt_s
        target = ambient + self.params.c_per_watt * self.power_w
        alpha = 1.0 - np.exp(-dt_s / self.params.thermal_tau_s)
        self.temperature_c += alpha * (target - self.temperature_c)
