"""Facility cooling substrate.

The paper's framing is *holistic* monitoring and analytics "from the
facility infrastructure down to the compute node level", with
infrastructure management (e.g. liquid cooling optimisation) as one of
the six ODA use-case classes.  This module provides the facility side:
a warm-water cooling loop serving the whole cluster.

Model (deliberately first-order, like the node thermal model):

- the *supply (inlet) temperature* relaxes toward the chiller setpoint
  plus a load-dependent offset — a loaded loop cannot quite hold its
  setpoint;
- node ambient temperatures follow the inlet temperature through
  :attr:`NodeModel.ambient_offset_c`, so facility decisions feed back
  into every node's thermal state (and hence Fig-8-style analyses);
- the *chiller power* needed to remove the IT heat load falls as the
  setpoint rises (warm-water cooling's efficiency argument): the
  coefficient of performance grows with setpoint.

The knob a Wintermute control operator can drive is
:meth:`CoolingSystem.set_setpoint`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

from repro.common.timeutil import NS_PER_SEC
from repro.dcdb.plugins.base import MonitoringPlugin, PluginSample
from repro.dcdb.sensor import Sensor


@dataclass(frozen=True)
class CoolingParams:
    """Constants of the cooling loop."""

    #: Default chiller setpoint (supply temperature target).
    setpoint_c: float = 40.0
    #: Allowed setpoint range for the control knob.
    setpoint_min_c: float = 30.0
    setpoint_max_c: float = 50.0
    #: Supply temperature rise per watt of IT load on the loop.
    load_c_per_w: float = 1.2e-4
    #: Thermal time constant of the loop.
    tau_s: float = 120.0
    #: COP model: cop = cop_base + cop_slope * (setpoint - 30C).
    cop_base: float = 3.0
    cop_slope: float = 0.25


class CoolingSystem:
    """Facility cooling loop coupled to a :class:`ClusterSimulator`.

    Args:
        simulator: the cluster whose nodes this loop serves.
        params: loop constants.
        nominal_ambient_c: the ambient the node models were built with;
            the loop drives node ambient as
            ``inlet - nominal_ambient`` offsets.
    """

    def __init__(
        self,
        simulator,
        params: CoolingParams = CoolingParams(),
        nominal_ambient_c: float = 40.0,
    ) -> None:
        self.sim = simulator
        self.params = params
        self.nominal_ambient_c = float(nominal_ambient_c)
        self.setpoint_c = params.setpoint_c
        self.inlet_temp_c = params.setpoint_c
        self.chiller_power_w = 0.0
        self.it_power_w = 0.0
        self._last_ts: int = -1
        self.setpoint_changes: List[Tuple[int, float]] = []

    # ------------------------------------------------------------------
    # Control knob
    # ------------------------------------------------------------------

    def set_setpoint(self, setpoint_c: float, ts: int = 0) -> float:
        """Adjust the chiller setpoint (clamped to the allowed range)."""
        p = self.params
        clamped = float(np.clip(setpoint_c, p.setpoint_min_c, p.setpoint_max_c))
        if clamped != self.setpoint_c:
            self.setpoint_changes.append((ts, clamped))
        self.setpoint_c = clamped
        return clamped

    # ------------------------------------------------------------------
    # Dynamics
    # ------------------------------------------------------------------

    def _total_it_power(self) -> float:
        return float(
            sum(state.model.power_w for state in self.sim._states.values())
        )

    def update(self, ts: int) -> None:
        """Advance the loop to ``ts`` and push ambients into the nodes."""
        p = self.params
        self.it_power_w = self._total_it_power()
        target = self.setpoint_c + p.load_c_per_w * self.it_power_w
        if self._last_ts < 0:
            self.inlet_temp_c = target
        else:
            dt_s = (ts - self._last_ts) / NS_PER_SEC
            if dt_s < 0:
                raise ValueError("cooling model time moved backwards")
            alpha = 1.0 - np.exp(-dt_s / p.tau_s)
            self.inlet_temp_c += alpha * (target - self.inlet_temp_c)
        self._last_ts = ts
        cop = p.cop_base + p.cop_slope * (self.setpoint_c - 30.0)
        self.chiller_power_w = self.it_power_w / max(cop, 0.5)
        offset = self.inlet_temp_c - self.nominal_ambient_c
        for state in self.sim._states.values():
            state.model.ambient_offset_c = offset

    @property
    def total_facility_power_w(self) -> float:
        """IT power plus the cooling power spent removing it."""
        return self.it_power_w + self.chiller_power_w


#: Sensor names the facility plugin attaches to its component path
#: (static-analysis view).
FACILITY_SENSOR_NAMES = ("inlet-temp", "setpoint", "chiller-power", "it-power")

#: name -> physical unit, for the static dataflow analyzer.
FACILITY_SENSOR_UNITS = {
    "inlet-temp": "C",
    "setpoint": "C",
    "chiller-power": "W",
    "it-power": "W",
}


class FacilityPlugin(MonitoringPlugin):
    """Monitoring plugin exposing the cooling loop as sensors.

    Publishes under a facility component path (default
    ``/facility/cooling``): ``inlet-temp``, ``setpoint``,
    ``chiller-power``, ``it-power`` — the out-of-band facility data of
    the paper's taxonomy.  Sampling also advances the loop dynamics.
    """

    def __init__(
        self,
        cooling: CoolingSystem,
        component_topic: str = "/facility/cooling",
        interval_ns: int = 10 * NS_PER_SEC,
    ) -> None:
        super().__init__("facility", interval_ns)
        self.cooling = cooling
        base = component_topic.rstrip("/")
        self._inlet = self._register(Sensor(f"{base}/inlet-temp", unit="C"))
        self._setpoint = self._register(Sensor(f"{base}/setpoint", unit="C"))
        self._chiller = self._register(
            Sensor(f"{base}/chiller-power", unit="W")
        )
        self._it = self._register(Sensor(f"{base}/it-power", unit="W"))

    def sample(self, ts: int) -> Iterable[PluginSample]:
        self.cooling.update(ts)
        yield PluginSample(self._inlet, self.cooling.inlet_temp_c)
        yield PluginSample(self._setpoint, self.cooling.setpoint_c)
        yield PluginSample(self._chiller, self.cooling.chiller_power_w)
        yield PluginSample(self._it, self.cooling.it_power_w)
