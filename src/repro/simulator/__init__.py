"""Synthetic HPC cluster substrate.

The paper's experiments ran on CooLMUC-3 (148 Knights Landing nodes, 64
cores each).  This package provides the closest synthetic equivalent: a
configurable cluster topology, per-node power/thermal/performance models
with manufacturing variability and plantable anomalies, phase-structured
workload generators for the CORAL-2 applications used in the paper, and a
job scheduler supplying the job table the persyst case study queries.

All components share a :class:`~repro.simulator.clock.SimClock`, so a
whole experiment is a deterministic function of its seed.
"""

from repro.simulator.clock import SimClock, PeriodicTask, TaskScheduler
from repro.simulator.cluster import ClusterSpec, ClusterTopology
from repro.simulator.node import NodeModel, NodePowerParams
from repro.simulator.workload import (
    AppProfile,
    IdleProfile,
    HplProfile,
    KripkeProfile,
    AmgProfile,
    NekboneProfile,
    LammpsProfile,
    profile_by_name,
    APP_PROFILES,
)
from repro.simulator.scheduler import Job, JobScheduler
from repro.simulator.engine import ClusterSimulator
from repro.simulator.facility import CoolingParams, CoolingSystem, FacilityPlugin

__all__ = [
    "SimClock",
    "PeriodicTask",
    "TaskScheduler",
    "ClusterSpec",
    "ClusterTopology",
    "NodeModel",
    "NodePowerParams",
    "AppProfile",
    "IdleProfile",
    "HplProfile",
    "KripkeProfile",
    "AmgProfile",
    "NekboneProfile",
    "LammpsProfile",
    "profile_by_name",
    "APP_PROFILES",
    "Job",
    "JobScheduler",
    "ClusterSimulator",
    "CoolingParams",
    "CoolingSystem",
    "FacilityPlugin",
]
