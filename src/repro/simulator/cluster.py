"""Cluster topology construction.

Builds the rack/chassis/node/cpu hierarchy whose paths become the sensor
tree of Section III.  The default spec approximates CooLMUC-3: 148
compute nodes with 64 cores each, arranged in racks of chassis.  The
topology is purely structural — per-node behaviour lives in
:mod:`repro.simulator.node` and :mod:`repro.simulator.workload`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

from repro.common.topics import join_topic


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of a synthetic cluster.

    ``total_nodes`` optionally truncates the node count below the full
    ``racks * chassis_per_rack * nodes_per_chassis`` grid, which is how
    we model CooLMUC-3's 148 nodes inside a 5x5x6 = 150 slot layout.
    """

    racks: int = 5
    chassis_per_rack: int = 5
    nodes_per_chassis: int = 6
    cpus_per_node: int = 64
    total_nodes: int = 148

    def __post_init__(self) -> None:
        grid = self.racks * self.chassis_per_rack * self.nodes_per_chassis
        if not (0 < self.total_nodes <= grid):
            raise ValueError(
                f"total_nodes {self.total_nodes} outside grid capacity {grid}"
            )
        if min(self.racks, self.chassis_per_rack, self.nodes_per_chassis,
               self.cpus_per_node) <= 0:
            raise ValueError("all topology dimensions must be positive")

    @staticmethod
    def small(nodes: int = 4, cpus: int = 4) -> "ClusterSpec":
        """A laptop-scale spec for tests and examples."""
        return ClusterSpec(
            racks=1,
            chassis_per_rack=1,
            nodes_per_chassis=nodes,
            cpus_per_node=cpus,
            total_nodes=nodes,
        )

    @staticmethod
    def coolmuc3() -> "ClusterSpec":
        """The CooLMUC-3-like default used by the figure benchmarks."""
        return ClusterSpec()


class ClusterTopology:
    """Materialised component paths for a :class:`ClusterSpec`.

    Exposes node paths (``/rack02/chassis01/node03``), per-node CPU paths
    and the chassis/rack containers, plus index lookups used by the
    simulator engine to map sensor topics back to model state.
    """

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec
        self.rack_paths: List[str] = []
        self.chassis_paths: List[str] = []
        self.node_paths: List[str] = []
        #: node path -> list of cpu component paths
        self.cpus_of_node: Dict[str, List[str]] = {}
        #: node path -> integer node index
        self.node_index: Dict[str, int] = {}
        self._build()

    def _build(self) -> None:
        spec = self.spec
        count = 0
        for r in range(spec.racks):
            rack = join_topic([f"rack{r:02d}"])
            rack_used = False
            for c in range(spec.chassis_per_rack):
                chassis = join_topic([f"rack{r:02d}", f"chassis{c:02d}"])
                chassis_used = False
                for n in range(spec.nodes_per_chassis):
                    if count >= spec.total_nodes:
                        break
                    node = join_topic(
                        [f"rack{r:02d}", f"chassis{c:02d}", f"node{n:02d}"]
                    )
                    self.node_paths.append(node)
                    self.node_index[node] = count
                    self.cpus_of_node[node] = [
                        f"{node}/cpu{k:02d}" for k in range(spec.cpus_per_node)
                    ]
                    count += 1
                    chassis_used = True
                if chassis_used:
                    self.chassis_paths.append(chassis)
                    rack_used = True
            if rack_used:
                self.rack_paths.append(rack)

    @property
    def n_nodes(self) -> int:
        """Number of compute nodes."""
        return len(self.node_paths)

    @property
    def n_cpus(self) -> int:
        """Total CPU count across the cluster."""
        return self.n_nodes * self.spec.cpus_per_node

    def iter_cpu_paths(self) -> Iterator[str]:
        """All CPU component paths, node-major order."""
        for node in self.node_paths:
            yield from self.cpus_of_node[node]

    def node_of_cpu(self, cpu_path: str) -> str:
        """The node path owning a CPU path."""
        return cpu_path.rsplit("/", 1)[0]
