"""Phase-structured application workload models.

The paper's case studies run HPL and the CORAL-2 applications Kripke,
AMG, Nekbone and LAMMPS on Knights Landing nodes.  We reproduce the
*signal structure* Section VI reports for each application:

- **HPL**: steady, compute-bound, near-full utilisation (baseline for
  the overhead measurements of Fig 5).
- **LAMMPS**: low CPI around 1.6 with minimal spread (compute-bound).
- **AMG**: low CPI bulk, but heavy upper-decile spikes up to ~30 caused
  by network latency (network-bound).
- **Kripke**: clearly separable iterations — CPI rises and falls
  periodically across *all* deciles (network/memory-bound).
- **Nekbone**: compute-bound first half; in the second half ≥20 % of
  cores blow up to high CPI as the working set exceeds the 16 GB HBM.

Every profile produces *per-core rate* arrays (cycles/s, instructions/s,
cache misses/s, flops/s, network bytes/s, utilisation) as pure functions
of time relative to job start.  Temporal noise is *value noise*: random
values anchored at fixed time bins and linearly interpolated, generated
from hashed (instance seed, bin) keys.  Rates are therefore independent
of the sampling cadence, deterministic under a seed, and smooth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Type

import numpy as np

#: Nominal KNL core clock in cycles per second (1.3 GHz).
CORE_FREQ_HZ = 1.3e9

#: Cache line size used to convert miss rates into memory bandwidth.
CACHE_LINE_BYTES = 64


@dataclass
class CoreRates:
    """Instantaneous per-core rates of a running application.

    All array attributes have one entry per core.  ``net_bytes_per_s``
    is a node-level aggregate (a scalar), since the OPA fabric is shared
    by all cores of a node.
    """

    utilization: np.ndarray
    cpi: np.ndarray
    cycles_per_s: np.ndarray
    instr_per_s: np.ndarray
    cache_miss_per_s: np.ndarray
    cache_ref_per_s: np.ndarray
    flops_per_s: np.ndarray
    vector_ops_per_s: np.ndarray
    net_bytes_per_s: float

    @property
    def mem_bw_bytes_per_s(self) -> np.ndarray:
        """Per-core memory bandwidth implied by cache misses."""
        return self.cache_miss_per_s * CACHE_LINE_BYTES


def _bin_rng(seed: int, bin_index: int) -> np.random.Generator:
    """Generator keyed by (seed, time bin); stable across calls."""
    mixed = (seed * 0x9E3779B97F4A7C15 + bin_index * 0xBF58476D1CE4E5B9) & (
        (1 << 63) - 1
    )
    return np.random.default_rng(mixed)


def value_noise(
    seed: int, t_s: float, bin_s: float, n: int, stream: int = 0
) -> np.ndarray:
    """Smooth standard-normal noise: linear interpolation between values
    anchored at ``bin_s``-spaced grid points.

    Pure in ``(seed, t_s, stream)``: resampling at any cadence sees the
    same underlying signal.
    """
    pos = t_s / bin_s
    lo = int(np.floor(pos))
    frac = pos - lo
    a = _bin_rng(seed + 7919 * stream, lo).standard_normal(n)
    b = _bin_rng(seed + 7919 * stream, lo + 1).standard_normal(n)
    return a * (1.0 - frac) + b * frac


def binned_uniform(
    seed: int, t_s: float, bin_s: float, n: int, stream: int = 0
) -> np.ndarray:
    """Piecewise-constant uniform[0,1) noise held for each time bin.

    Used for event-like behaviour (spike schedules) where values should
    persist for a whole bin rather than interpolate.
    """
    lo = int(np.floor(t_s / bin_s))
    return _bin_rng(seed + 104729 * stream, lo).random(n)


class AppInstance:
    """One application running on one node's cores.

    Subclass instances freeze their random per-core parameters at
    construction; :meth:`rates` is then a pure function of elapsed time.
    """

    #: Relative node power intensity of the app in [0, 1].
    power_intensity: float = 0.9

    def __init__(self, n_cores: int, seed: int) -> None:
        self.n_cores = int(n_cores)
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)

    # -- to be provided by subclasses ----------------------------------

    def _cpi(self, t_s: float) -> np.ndarray:
        raise NotImplementedError

    def _utilization(self, t_s: float) -> np.ndarray:
        return np.full(self.n_cores, 0.97)

    def _net_bytes_per_s(self, t_s: float) -> float:
        return 0.0

    def _flop_fraction(self, t_s: float) -> float:
        """Fraction of instructions that are floating-point."""
        return 0.3

    def _vector_fraction(self, t_s: float) -> float:
        """Fraction of FP instructions that are vectorised."""
        return 0.5

    # -- common machinery ----------------------------------------------

    def activity(self, t_s: float) -> float:
        """Scalar activity in [0, 1] driving the node power model.

        Mean utilisation modulated by the app's power intensity; high-CPI
        (stalled) phases draw slightly less dynamic power.
        """
        rates = self.rates(t_s)
        stall_discount = np.clip(1.0 - 0.004 * (rates.cpi - 1.0), 0.7, 1.0)
        return float(
            np.mean(rates.utilization * stall_discount) * self.power_intensity
        )

    def rates(self, t_s: float) -> CoreRates:
        """Per-core rates at elapsed job time ``t_s`` seconds."""
        cpi = np.maximum(self._cpi(t_s), 0.25)
        util = np.clip(self._utilization(t_s), 0.0, 1.0)
        cycles = CORE_FREQ_HZ * util
        instr = cycles / cpi
        # Memory-bound (high-CPI) phases miss more per instruction: map
        # CPI in [1, 30] to a miss ratio in [2e-3, 6e-2] of references.
        miss_ratio = np.clip(2e-3 + (cpi - 1.0) * 2e-3, 2e-3, 6e-2)
        refs = instr * 0.30  # ~30% of instructions touch memory
        misses = refs * miss_ratio
        flop_frac = self._flop_fraction(t_s)
        vec_frac = self._vector_fraction(t_s)
        flops = instr * flop_frac * (1.0 + 7.0 * vec_frac)  # AVX-512 width
        vec_ops = instr * flop_frac * vec_frac
        return CoreRates(
            utilization=util,
            cpi=cpi,
            cycles_per_s=cycles,
            instr_per_s=instr,
            cache_miss_per_s=misses,
            cache_ref_per_s=refs,
            flops_per_s=flops,
            vector_ops_per_s=vec_ops,
            net_bytes_per_s=self._net_bytes_per_s(t_s),
        )


class AppProfile:
    """Factory for :class:`AppInstance` objects of one application."""

    name: str = "app"
    instance_cls: Type[AppInstance] = AppInstance
    #: Nominal run length used by duration-aware profiles (seconds).
    nominal_duration_s: float = 600.0

    def make_instance(
        self, n_cores: int, seed: int, duration_s: Optional[float] = None
    ) -> AppInstance:
        """Instantiate the app on ``n_cores`` cores with a frozen seed.

        ``duration_s`` is the scheduled job length; duration-aware
        profiles (Nekbone's phase split) use it, others ignore it.
        """
        return self.instance_cls(n_cores, seed)


# ----------------------------------------------------------------------
# Idle
# ----------------------------------------------------------------------


class IdleInstance(AppInstance):
    """Background OS noise on an unallocated node."""

    power_intensity = 0.03

    def _cpi(self, t_s: float) -> np.ndarray:
        return 1.5 + 0.1 * value_noise(self.seed, t_s, 5.0, self.n_cores)

    def _utilization(self, t_s: float) -> np.ndarray:
        jitter = value_noise(self.seed, t_s, 3.0, self.n_cores, stream=1)
        # OS background activity never fully vanishes: keep a tiny floor.
        return np.clip(0.015 + 0.01 * jitter, 0.002, 0.1)

    def _flop_fraction(self, t_s: float) -> float:
        return 0.02


class IdleProfile(AppProfile):
    name = "idle"
    instance_cls = IdleInstance


# ----------------------------------------------------------------------
# HPL — steady compute-bound baseline
# ----------------------------------------------------------------------


class HplInstance(AppInstance):
    power_intensity = 1.0

    def _cpi(self, t_s: float) -> np.ndarray:
        base = 0.9 + 0.02 * value_noise(self.seed, t_s, 10.0, self.n_cores)
        return base

    def _utilization(self, t_s: float) -> np.ndarray:
        return np.full(self.n_cores, 0.99)

    def _flop_fraction(self, t_s: float) -> float:
        return 0.55

    def _vector_fraction(self, t_s: float) -> float:
        return 0.9

    def _net_bytes_per_s(self, t_s: float) -> float:
        return 2e8


class HplProfile(AppProfile):
    name = "hpl"
    instance_cls = HplInstance
    nominal_duration_s = 900.0


# ----------------------------------------------------------------------
# LAMMPS — low CPI (~1.6), tight spread
# ----------------------------------------------------------------------


class LammpsInstance(AppInstance):
    power_intensity = 0.95

    def __init__(self, n_cores: int, seed: int) -> None:
        super().__init__(n_cores, seed)
        # Frozen per-core offsets give a small, persistent spread.
        self._core_offset = self._rng.normal(0.0, 0.05, n_cores)

    def _cpi(self, t_s: float) -> np.ndarray:
        wobble = 0.06 * value_noise(self.seed, t_s, 8.0, self.n_cores)
        return 1.6 + self._core_offset + wobble

    def _utilization(self, t_s: float) -> np.ndarray:
        return np.full(self.n_cores, 0.98)

    def _flop_fraction(self, t_s: float) -> float:
        return 0.45

    def _vector_fraction(self, t_s: float) -> float:
        return 0.6

    def _net_bytes_per_s(self, t_s: float) -> float:
        return 5e8


class LammpsProfile(AppProfile):
    name = "lammps"
    instance_cls = LammpsInstance
    nominal_duration_s = 650.0


# ----------------------------------------------------------------------
# AMG — low bulk CPI with heavy upper-tail spikes (network-bound)
# ----------------------------------------------------------------------


class AmgInstance(AppInstance):
    power_intensity = 0.85

    #: Fraction of cores that may spike in any 5 s window.
    SPIKE_FRACTION = 0.12
    SPIKE_BIN_S = 5.0

    def __init__(self, n_cores: int, seed: int) -> None:
        super().__init__(n_cores, seed)
        self._core_offset = self._rng.normal(0.0, 0.25, n_cores)

    def _cpi(self, t_s: float) -> np.ndarray:
        base = 2.3 + self._core_offset
        base = base + 0.2 * value_noise(self.seed, t_s, 6.0, self.n_cores)
        # Spikes: in each window a random subset of cores stalls on
        # network latency, pushing CPI up to ~30.
        roll = binned_uniform(self.seed, t_s, self.SPIKE_BIN_S, self.n_cores, 2)
        magnitude = binned_uniform(
            self.seed, t_s, self.SPIKE_BIN_S, self.n_cores, 3
        )
        spiking = roll < self.SPIKE_FRACTION
        spike_cpi = 8.0 + 24.0 * magnitude
        return np.where(spiking, spike_cpi, base)

    def _utilization(self, t_s: float) -> np.ndarray:
        return np.full(self.n_cores, 0.95)

    def _flop_fraction(self, t_s: float) -> float:
        return 0.25

    def _vector_fraction(self, t_s: float) -> float:
        return 0.35

    def _net_bytes_per_s(self, t_s: float) -> float:
        burst = binned_uniform(self.seed, t_s, self.SPIKE_BIN_S, 1, 4)[0]
        return 3e9 * (0.6 + 0.8 * burst)


class AmgProfile(AppProfile):
    name = "amg"
    instance_cls = AmgInstance
    nominal_duration_s = 550.0


# ----------------------------------------------------------------------
# Kripke — separable iterations: periodic CPI swing across all deciles
# ----------------------------------------------------------------------


class KripkeInstance(AppInstance):
    power_intensity = 0.88

    #: Sweep-iteration period in seconds (Fig 7 shows ~10 iterations).
    ITERATION_S = 45.0

    def __init__(self, n_cores: int, seed: int) -> None:
        super().__init__(n_cores, seed)
        self._core_offset = self._rng.normal(0.0, 0.6, n_cores)
        self._phase = self._rng.random() * 0.1  # small start offset

    def _iteration_pos(self, t_s: float) -> float:
        """Position within the current iteration in [0, 1)."""
        return ((t_s / self.ITERATION_S) + self._phase) % 1.0

    def _cpi(self, t_s: float) -> np.ndarray:
        # Each iteration ramps communication pressure up then releases:
        # a raised-cosine bump repeated every iteration.
        pos = self._iteration_pos(t_s)
        bump = 0.5 * (1.0 - np.cos(2.0 * np.pi * pos))
        base = 4.0 + 9.0 * bump
        noise = 0.5 * value_noise(self.seed, t_s, 4.0, self.n_cores)
        return base + self._core_offset + noise

    def _utilization(self, t_s: float) -> np.ndarray:
        pos = self._iteration_pos(t_s)
        # Brief dip at iteration boundaries (synchronisation).
        dip = 0.15 if pos > 0.92 else 0.0
        return np.full(self.n_cores, 0.93 - dip)

    def _flop_fraction(self, t_s: float) -> float:
        return 0.3

    def _vector_fraction(self, t_s: float) -> float:
        return 0.45

    def _net_bytes_per_s(self, t_s: float) -> float:
        pos = self._iteration_pos(t_s)
        return 2.5e9 * (0.3 + 0.7 * (1.0 - np.cos(2.0 * np.pi * pos)) / 2.0)


class KripkeProfile(AppProfile):
    name = "kripke"
    instance_cls = KripkeInstance
    nominal_duration_s = 470.0


# ----------------------------------------------------------------------
# Nekbone — compute-bound, then memory-limited blow-up past HBM capacity
# ----------------------------------------------------------------------


class NekboneInstance(AppInstance):
    power_intensity = 0.9

    #: Fraction of run time before the working set exceeds the 16 GB HBM.
    PHASE_SPLIT = 0.5
    #: Fraction of cores that become memory-limited in phase 2.
    AFFECTED_FRACTION = 0.25

    def __init__(
        self, n_cores: int, seed: int, duration_s: float = 800.0
    ) -> None:
        super().__init__(n_cores, seed)
        self.duration_s = float(duration_s)
        self._core_offset = self._rng.normal(0.0, 0.15, n_cores)
        n_affected = max(1, int(round(self.AFFECTED_FRACTION * n_cores)))
        affected = self._rng.choice(n_cores, size=n_affected, replace=False)
        self._affected_mask = np.zeros(n_cores, dtype=bool)
        self._affected_mask[affected] = True

    def _cpi(self, t_s: float) -> np.ndarray:
        base = 2.0 + self._core_offset
        base = base + 0.1 * value_noise(self.seed, t_s, 6.0, self.n_cores)
        split = self.PHASE_SPLIT * self.duration_s
        if t_s <= split:
            return base
        # Problem sizes grow through the batch: the blow-up intensifies
        # over the second half of the run.
        progress = min(1.0, (t_s - split) / max(1.0, self.duration_s - split))
        surge = binned_uniform(self.seed, t_s, 10.0, self.n_cores, 5)
        blowup = 4.0 + (10.0 + 26.0 * progress) * surge
        return np.where(self._affected_mask, base + blowup * progress, base)

    def _utilization(self, t_s: float) -> np.ndarray:
        return np.full(self.n_cores, 0.96)

    def _flop_fraction(self, t_s: float) -> float:
        return 0.5

    def _vector_fraction(self, t_s: float) -> float:
        return 0.7

    def _net_bytes_per_s(self, t_s: float) -> float:
        return 8e8


class NekboneProfile(AppProfile):
    name = "nekbone"
    instance_cls = NekboneInstance
    nominal_duration_s = 800.0

    def make_instance(
        self, n_cores: int, seed: int, duration_s: Optional[float] = None
    ) -> NekboneInstance:
        return NekboneInstance(
            n_cores,
            seed,
            duration_s=duration_s if duration_s else self.nominal_duration_s,
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

APP_PROFILES: Dict[str, AppProfile] = {
    p.name: p
    for p in (
        IdleProfile(),
        HplProfile(),
        LammpsProfile(),
        AmgProfile(),
        KripkeProfile(),
        NekboneProfile(),
    )
}


def profile_by_name(name: str) -> AppProfile:
    """Look up a registered application profile by name."""
    try:
        return APP_PROFILES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown application profile {name!r}; "
            f"known: {sorted(APP_PROFILES)}"
        ) from None
