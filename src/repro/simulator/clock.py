"""Simulation clock and periodic task scheduling.

Production DCDB components run free-threaded sampling loops; for a
reproducible reproduction every periodic activity (monitoring plugin
sampling, online operator computation, collect-agent drains) is instead
registered as a :class:`PeriodicTask` on a :class:`TaskScheduler` driven
by a shared :class:`SimClock`.  ``run_until`` fires due tasks in strict
timestamp order (ties broken by registration order), which makes an
entire multi-component experiment deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

from repro.common.timeutil import NS_PER_SEC

#: A periodic callback receives the nominal fire time in nanoseconds.
TaskFn = Callable[[int], None]


class SimClock:
    """A monotonically advancing nanosecond clock."""

    def __init__(self, start_ns: int = 0) -> None:
        self._now = int(start_ns)

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    def advance(self, delta_ns: int) -> int:
        """Move the clock forward; negative deltas are rejected."""
        if delta_ns < 0:
            raise ValueError(f"clock cannot move backwards: {delta_ns}")
        self._now += int(delta_ns)
        return self._now

    def advance_to(self, ts_ns: int) -> int:
        """Move the clock to an absolute time, never backwards."""
        if ts_ns < self._now:
            raise ValueError(
                f"clock cannot move backwards: {ts_ns} < {self._now}"
            )
        self._now = int(ts_ns)
        return self._now

    def seconds(self) -> float:
        """Current time in float seconds."""
        return self._now / NS_PER_SEC


class PeriodicTask:
    """A recurring callback with a fixed interval and optional phase.

    Attributes:
        interval_ns: period between invocations.
        next_due: nanosecond time of the next invocation.
        enabled: disabled tasks stay scheduled but are skipped; this is
            how stopped operators behave in the manager.
        once: one-shot tasks fire a single time and then retire
            (used e.g. for delayed network deliveries).
    """

    __slots__ = (
        "name",
        "fn",
        "interval_ns",
        "next_due",
        "enabled",
        "fire_count",
        "once",
        "done",
    )

    def __init__(
        self,
        name: str,
        fn: TaskFn,
        interval_ns: int,
        first_due: int = 0,
        once: bool = False,
    ) -> None:
        if interval_ns <= 0:
            raise ValueError(f"task interval must be positive: {interval_ns}")
        self.name = name
        self.fn = fn
        self.interval_ns = int(interval_ns)
        self.next_due = int(first_due)
        self.enabled = True
        self.fire_count = 0
        self.once = once
        self.done = False

    def fire(self, ts: int) -> None:
        """Invoke the callback and schedule the next occurrence."""
        if self.enabled:
            self.fn(ts)
            self.fire_count += 1
            if self.once:
                self.done = True
        if self.once and not self.enabled:
            # A disabled one-shot is simply dropped at its due time.
            self.done = True
        self.next_due += self.interval_ns


class TaskScheduler:
    """Priority-queue scheduler for periodic tasks on a shared clock."""

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._heap: List = []
        self._counter = itertools.count()
        self._tasks: List[PeriodicTask] = []

    def add(self, task: PeriodicTask) -> PeriodicTask:
        """Register a task; its first firing is at ``task.next_due``."""
        if task.next_due < self.clock.now:
            task.next_due = self.clock.now
        heapq.heappush(self._heap, (task.next_due, next(self._counter), task))
        if not task.once:
            # One-shot tasks are fire-and-forget; keeping them out of the
            # registry keeps high-rate uses (per-message network delays)
            # free of O(n) bookkeeping.
            self._tasks.append(task)
        return task

    def add_callback(
        self, name: str, fn: TaskFn, interval_ns: int, first_due: Optional[int] = None
    ) -> PeriodicTask:
        """Create and register a task in one step."""
        due = self.clock.now if first_due is None else first_due
        return self.add(PeriodicTask(name, fn, interval_ns, due))

    def add_once(self, name: str, fn: TaskFn, due_ns: int) -> PeriodicTask:
        """Register a one-shot callback firing at ``due_ns`` (clamped to
        now when already past)."""
        return self.add(
            PeriodicTask(name, fn, interval_ns=1, first_due=due_ns, once=True)
        )

    def tasks(self) -> List[PeriodicTask]:
        """All registered tasks (including disabled ones)."""
        return list(self._tasks)

    def run_until(self, end_ns: int) -> int:
        """Fire all tasks due up to and including ``end_ns``.

        Advances the clock task by task (so callbacks observe the nominal
        fire time as "now") and leaves it at ``end_ns``.  Returns the
        number of task firings.
        """
        fired = 0
        while self._heap and self._heap[0][0] <= end_ns:
            due, _, task = heapq.heappop(self._heap)
            self.clock.advance_to(max(due, self.clock.now))
            task.fire(due)
            if not task.done:
                heapq.heappush(
                    self._heap, (task.next_due, next(self._counter), task)
                )
            fired += 1
        self.clock.advance_to(max(end_ns, self.clock.now))
        return fired

    def run_for(self, duration_ns: int) -> int:
        """Run for a duration from the current clock time."""
        return self.run_until(self.clock.now + duration_ns)
