"""Job scheduling substrate.

Wintermute's job operators (Section V-C) consume job metadata — job id,
user, node list — from the resource manager.  The paper's system queries
SLURM; this module provides the synthetic equivalent: a job table with
node allocations, FCFS placement onto free nodes, and the
``running at timestamp`` queries the persyst plugin performs at each
computation interval.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class Job:
    """One batch job: an application run on a set of nodes."""

    job_id: str
    app_name: str
    node_paths: tuple
    start_ts: int
    end_ts: int
    user: str = "hpcuser"

    def __post_init__(self) -> None:
        if self.start_ts >= self.end_ts:
            raise ConfigError(
                f"job {self.job_id}: start {self.start_ts} >= end {self.end_ts}"
            )
        if not self.node_paths:
            raise ConfigError(f"job {self.job_id}: empty node list")

    def is_running(self, ts: int) -> bool:
        """Whether the job occupies its nodes at ``ts`` (half-open end)."""
        return self.start_ts <= ts < self.end_ts

    @property
    def n_nodes(self) -> int:
        """Number of allocated nodes."""
        return len(self.node_paths)


class JobScheduler:
    """Job table with allocation queries.

    Jobs can be placed explicitly (:meth:`add_job`, fixed node list) or
    through FCFS allocation (:meth:`submit`, which picks the first nodes
    free for the job's whole time range).  Lookups used on hot paths
    (``job_on_node``) go through a per-node index.
    """

    def __init__(self, node_paths: Sequence[str]) -> None:
        self.node_paths = list(node_paths)
        self._node_set = set(self.node_paths)
        self._jobs: Dict[str, Job] = {}
        # node path -> jobs touching it, kept sorted by start time.
        self._by_node: Dict[str, List[Job]] = {p: [] for p in self.node_paths}
        self._ids = itertools.count(1000)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def add_job(self, job: Job) -> Job:
        """Register a job with a fixed allocation.

        Rejects unknown nodes and time overlaps with existing jobs on
        any requested node.
        """
        for path in job.node_paths:
            if path not in self._node_set:
                raise ConfigError(f"job {job.job_id}: unknown node {path}")
            for other in self._by_node[path]:
                if job.start_ts < other.end_ts and other.start_ts < job.end_ts:
                    raise ConfigError(
                        f"job {job.job_id} overlaps {other.job_id} on {path}"
                    )
        if job.job_id in self._jobs:
            raise ConfigError(f"duplicate job id {job.job_id}")
        self._jobs[job.job_id] = job
        for path in job.node_paths:
            bucket = self._by_node[path]
            bucket.append(job)
            bucket.sort(key=lambda j: j.start_ts)
        return job

    def submit(
        self,
        app_name: str,
        n_nodes: int,
        start_ts: int,
        end_ts: int,
        user: str = "hpcuser",
        job_id: Optional[str] = None,
    ) -> Job:
        """FCFS-allocate ``n_nodes`` free for the whole time range."""
        free = [
            p
            for p in self.node_paths
            if all(
                not (start_ts < j.end_ts and j.start_ts < end_ts)
                for j in self._by_node[p]
            )
        ]
        if len(free) < n_nodes:
            raise ConfigError(
                f"cannot allocate {n_nodes} nodes for [{start_ts}, {end_ts}): "
                f"only {len(free)} free"
            )
        jid = job_id if job_id is not None else f"job{next(self._ids)}"
        job = Job(jid, app_name, tuple(free[:n_nodes]), start_ts, end_ts, user)
        return self.add_job(job)

    def submit_earliest(
        self,
        app_name: str,
        n_nodes: int,
        duration_ns: int,
        not_before_ts: int = 0,
        user: str = "hpcuser",
        job_id: Optional[str] = None,
        probe_step_ns: int = 0,
        horizon_ns: int = 0,
    ) -> Job:
        """Place a job at the earliest start with ``n_nodes`` free.

        A simple backfilling submit: starting from ``not_before_ts``, the
        start time advances to each already-scheduled job end until a
        window with enough free nodes for the full duration is found.
        ``probe_step_ns``/``horizon_ns`` are accepted for compatibility
        with step-probing callers but the event-driven search ignores
        them.
        """
        candidates = sorted(
            {not_before_ts}
            | {
                j.end_ts
                for j in self._jobs.values()
                if j.end_ts > not_before_ts
            }
        )
        last_error: Optional[ConfigError] = None
        for start_ts in candidates:
            try:
                return self.submit(
                    app_name,
                    n_nodes,
                    start_ts,
                    start_ts + duration_ns,
                    user=user,
                    job_id=job_id,
                )
            except ConfigError as exc:
                last_error = exc
        raise ConfigError(
            f"no feasible start found for {n_nodes} nodes x "
            f"{duration_ns} ns: {last_error}"
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def job(self, job_id: str) -> Optional[Job]:
        """Look up a job by id."""
        return self._jobs.get(job_id)

    def all_jobs(self) -> List[Job]:
        """Every registered job, in insertion order."""
        return list(self._jobs.values())

    def running_jobs(self, ts: int) -> List[Job]:
        """Jobs occupying nodes at ``ts`` — the query the persyst plugin
        issues each computation interval."""
        return [j for j in self._jobs.values() if j.is_running(ts)]

    def job_on_node(self, node_path: str, ts: int) -> Optional[Job]:
        """The job (if any) running on ``node_path`` at ``ts``."""
        bucket = self._by_node.get(node_path)
        if not bucket:
            return None
        for job in bucket:
            if job.start_ts > ts:
                return None
            if job.is_running(ts):
                return job
        return None

    def utilization(self, ts: int) -> float:
        """Fraction of nodes occupied at ``ts``."""
        busy = sum(j.n_nodes for j in self.running_jobs(ts))
        return busy / max(1, len(self.node_paths))
