"""The cluster simulation engine.

:class:`ClusterSimulator` ties together topology, per-node power models,
application workload instances and the job scheduler.  Monitoring
plugins (``repro.dcdb.plugins``) read from it the same way DCDB's
perfevent/sysfs/procfs/opa plugins read from hardware interfaces.

Counters are integrated lazily per node: a node's state advances only
when something samples it, using the workload's midpoint rates over the
elapsed interval.  All per-core counters of a node update in one
vectorised step, so sampling a 64-core node costs a handful of NumPy
operations regardless of core count.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.common.rng import derive_seed
from repro.common.timeutil import NS_PER_SEC
from repro.simulator.cluster import ClusterSpec, ClusterTopology
from repro.simulator.node import NodeModel, NodePowerParams
from repro.simulator.scheduler import JobScheduler
from repro.simulator.workload import AppInstance, IdleProfile, profile_by_name

#: Column layout of the per-core counter matrix.
CPU_COUNTERS = (
    "cpu-cycles",
    "instructions",
    "cache-misses",
    "cache-references",
    "flops",
    "vector-ops",
)
_COUNTER_INDEX = {name: i for i, name in enumerate(CPU_COUNTERS)}

#: Node-level instantaneous sensors.
NODE_GAUGES = ("power", "temp", "memfree", "freq")
#: Node-level monotonic counters.
NODE_COUNTERS = ("energy", "idle-time", "xmit-bytes", "rcv-bytes")


class _NodeState:
    """Mutable simulation state for one compute node."""

    __slots__ = (
        "model",
        "counters",
        "net_xmit",
        "net_rcv",
        "instance",
        "job_id",
        "job_start_ts",
        "last_ts",
        "mean_util",
        "mean_cpi",
    )

    def __init__(self, model: NodeModel, n_cores: int, idle: AppInstance):
        self.model = model
        self.counters = np.zeros((n_cores, len(CPU_COUNTERS)), dtype=np.float64)
        self.net_xmit = 0.0
        self.net_rcv = 0.0
        self.instance = idle
        self.job_id: Optional[str] = None
        self.job_start_ts = 0
        self.last_ts = -1
        self.mean_util = 0.0
        self.mean_cpi = 1.0


class ClusterSimulator:
    """Synthetic cluster producing hardware-like sensor values.

    Args:
        spec: cluster shape; defaults to the CooLMUC-3-like layout.
        seed: master seed; every node/job stream derives from it.
        scheduler: optional externally built job table.  When omitted an
            empty one over the topology's nodes is created.
        anomalies: mapping of node path -> power multiplier used to
            plant anomalous nodes (Fig 8's +20 % power outlier).
        power_params: shared node electrical constants.
    """

    def __init__(
        self,
        spec: Optional[ClusterSpec] = None,
        seed: int = 0xDCDB,
        scheduler: Optional[JobScheduler] = None,
        anomalies: Optional[Dict[str, float]] = None,
        power_params: NodePowerParams = NodePowerParams(),
    ) -> None:
        self.spec = spec if spec is not None else ClusterSpec()
        self.topology = ClusterTopology(self.spec)
        self.seed = int(seed)
        self.scheduler = (
            scheduler
            if scheduler is not None
            else JobScheduler(self.topology.node_paths)
        )
        anomalies = anomalies or {}
        self._idle_profile = IdleProfile()
        self._states: Dict[str, _NodeState] = {}
        for path in self.topology.node_paths:
            node_seed = derive_seed(self.seed, f"node:{path}")
            model = NodeModel(
                path,
                self.spec.cpus_per_node,
                node_seed,
                params=power_params,
                power_anomaly=anomalies.get(path, 1.0),
            )
            idle = self._idle_profile.make_instance(
                self.spec.cpus_per_node, derive_seed(self.seed, f"idle:{path}")
            )
            self._states[path] = _NodeState(model, self.spec.cpus_per_node, idle)

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------

    def _sync_job(self, state: _NodeState, node_path: str, ts: int) -> None:
        """Swap the node's app instance if its scheduled job changed."""
        job = self.scheduler.job_on_node(node_path, ts)
        job_id = job.job_id if job else None
        if job_id == state.job_id:
            return
        state.job_id = job_id
        if job is None:
            state.instance = self._idle_profile.make_instance(
                self.spec.cpus_per_node,
                derive_seed(self.seed, f"idle:{node_path}:{ts}"),
            )
            state.job_start_ts = ts
        else:
            profile = profile_by_name(job.app_name)
            state.instance = profile.make_instance(
                self.spec.cpus_per_node,
                derive_seed(self.seed, f"job:{job.job_id}:{node_path}"),
                duration_s=(job.end_ts - job.start_ts) / NS_PER_SEC,
            )
            state.job_start_ts = job.start_ts

    # ------------------------------------------------------------------
    # Advancement
    # ------------------------------------------------------------------

    def advance_node(self, node_path: str, ts: int) -> _NodeState:
        """Bring one node's counters and gauges up to time ``ts``."""
        state = self._states[node_path]
        if state.last_ts == ts:
            return state
        if state.last_ts > ts:
            raise ValueError(
                f"node {node_path} sampled backwards: {ts} < {state.last_ts}"
            )
        self._sync_job(state, node_path, ts)
        t_rel = (ts - state.job_start_ts) / NS_PER_SEC
        if state.last_ts < 0:
            dt_s = 0.0
        else:
            dt_s = (ts - state.last_ts) / NS_PER_SEC
        # Midpoint rates approximate the integral over the interval.
        t_mid = max(0.0, t_rel - dt_s / 2.0)
        rates = state.instance.rates(t_mid)
        if dt_s > 0.0:
            state.counters[:, _COUNTER_INDEX["cpu-cycles"]] += (
                rates.cycles_per_s * dt_s
            )
            state.counters[:, _COUNTER_INDEX["instructions"]] += (
                rates.instr_per_s * dt_s
            )
            state.counters[:, _COUNTER_INDEX["cache-misses"]] += (
                rates.cache_miss_per_s * dt_s
            )
            state.counters[:, _COUNTER_INDEX["cache-references"]] += (
                rates.cache_ref_per_s * dt_s
            )
            state.counters[:, _COUNTER_INDEX["flops"]] += rates.flops_per_s * dt_s
            state.counters[:, _COUNTER_INDEX["vector-ops"]] += (
                rates.vector_ops_per_s * dt_s
            )
            state.net_xmit += rates.net_bytes_per_s * dt_s
            state.net_rcv += rates.net_bytes_per_s * 0.96 * dt_s
        state.mean_util = float(np.mean(rates.utilization))
        state.mean_cpi = float(np.mean(rates.cpi))
        activity = state.instance.activity(t_rel)
        state.model.update(ts, activity, state.mean_util)
        state.last_ts = ts
        return state

    # ------------------------------------------------------------------
    # Sensor reads (used by monitoring plugins)
    # ------------------------------------------------------------------

    def read_cpu_counter(
        self, node_path: str, cpu_index: int, counter: str, ts: int
    ) -> float:
        """Monotonic per-core counter value at ``ts``."""
        state = self.advance_node(node_path, ts)
        return float(state.counters[cpu_index, _COUNTER_INDEX[counter]])

    def read_cpu_counters(
        self, node_path: str, counter: str, ts: int
    ) -> np.ndarray:
        """All cores' values of one counter at ``ts`` (view, no copy)."""
        state = self.advance_node(node_path, ts)
        return state.counters[:, _COUNTER_INDEX[counter]]

    def read_node(self, node_path: str, name: str, ts: int) -> float:
        """Node-level gauge or counter value at ``ts``.

        Gauges: ``power`` (W), ``temp`` (C), ``memfree`` (bytes),
        ``freq`` (Hz).  Counters: ``energy`` (J), ``idle-time``
        (core-seconds), ``xmit-bytes``, ``rcv-bytes``.
        """
        state = self.advance_node(node_path, ts)
        if name == "power":
            return state.model.power_w
        if name == "temp":
            return state.model.temperature_c
        if name == "energy":
            return state.model.energy_j
        if name == "idle-time":
            return state.model.idle_time_s
        if name == "xmit-bytes":
            return state.net_xmit
        if name == "rcv-bytes":
            return state.net_rcv
        if name == "memfree":
            # Busy nodes hold larger working sets; wobble keeps it alive.
            used_frac = 0.1 + 0.6 * state.mean_util
            return (1.0 - used_frac) * 96e9
        if name == "freq":
            return 1.3e9 * (1.0 + (0.1 if state.mean_util > 0.5 else 0.0))
        raise KeyError(f"unknown node sensor {name!r}")

    def current_job(self, node_path: str) -> Optional[str]:
        """Job id currently bound to the node's state (after last sample)."""
        return self._states[node_path].job_id

    @property
    def node_paths(self) -> List[str]:
        """All node component paths."""
        return self.topology.node_paths
