"""The Operator Manager (Section V-A).

The central entity responsible for reading Wintermute configuration,
loading operator plugins and managing their life cycle.  It is the main
interface between Wintermute and DCDB: once bound to a host (Pusher or
Collect Agent) it owns that host's Query Engine, schedules online
operators on the host's task scheduler, and registers the ODA RESTful
routes (start/stop/reload, on-demand triggering) on the host's API.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.common.errors import ConfigError, PluginError
from repro.core.configurator import Configurator
from repro.core.fusion import FusedGroup
from repro.core.operator import JobOperatorBase, OperatorBase
from repro.core.pipeline import FusionSpec, plan_fusion
from repro.core.queryengine import QueryEngine
from repro.dcdb.restapi import RestResponse
from repro.telemetry import MetricRegistry


class OperatorManager:
    """Plugin lifecycle and scheduling for one analytics host.

    Args:
        context: host-level context injected into operator constructors
            that declare matching parameters — most importantly
            ``job_source`` for job operator plugins.
    """

    def __init__(self, context: Optional[Dict[str, object]] = None) -> None:
        self.host = None
        self.engine: Optional[QueryEngine] = None
        self._context: Dict[str, object] = dict(context or {})
        self._operators: Dict[str, OperatorBase] = {}
        self._plugin_of: Dict[str, str] = {}
        self._tasks: Dict[str, object] = {}
        self._fused_groups: Dict[str, FusedGroup] = {}
        self._telemetry = MetricRegistry()
        self._init_metrics(self._telemetry)

    def _init_metrics(self, registry: MetricRegistry) -> None:
        self._m_busy = registry.counter("analytics_busy_ns_total")
        self._m_fusion_fallbacks = registry.counter("fusion_fallbacks_total")
        self._m_fusion_pass = registry.histogram("fusion_pass_seconds")
        registry.gauge("fused_groups", fn=lambda: len(self._fused_groups))

    @property
    def analytics_busy_ns(self) -> int:
        """Wall-clock ns spent in operator computations on this host."""
        return self._m_busy.value

    # ------------------------------------------------------------------
    # Host binding
    # ------------------------------------------------------------------

    def bind_host(self, host) -> None:
        """Attach to a Pusher or Collect Agent (its ``attach_analytics``
        calls this)."""
        self.host = host
        registry = getattr(host, "telemetry", None)
        if registry is not None and registry is not self._telemetry:
            registry.absorb(self._telemetry)
            self._telemetry = registry
            self._init_metrics(registry)
        self.engine = QueryEngine(host)
        self._context.setdefault("host", host)
        host.rest.register("GET", "/analytics/operators", self._route_list)
        host.rest.register("PUT", "/analytics/operators", self._route_action)
        host.rest.register("GET", "/analytics/plugins", self._route_plugins)
        host.rest.register("GET", "/analytics/units", self._route_breaker_get)
        host.rest.register("PUT", "/analytics/units", self._route_breaker_put)

    def _require_host(self) -> None:
        if self.host is None or self.engine is None:
            raise PluginError("OperatorManager is not bound to a host")

    # ------------------------------------------------------------------
    # Plugin loading
    # ------------------------------------------------------------------

    def load_plugin(self, config: dict, start: bool = True) -> List[OperatorBase]:
        """Load one plugin configuration block.

        Builds its operators, resolves their units against the host's
        current sensor tree, schedules the online ones and (optionally)
        starts them.  Returns the created operators.
        """
        self._require_host()
        assert self.engine is not None
        configurator = Configurator(config, self._context)
        operators = configurator.build()
        for op in operators:
            if op.name in self._operators:
                raise ConfigError(f"duplicate operator name {op.name!r}")
        # Pipelines: upstream stages may have created sensors after this
        # engine was built — resolve against the freshest sensor space.
        self.engine.refresh_navigator()
        tree = self.engine.navigator.tree
        for op in operators:
            op.bind(self.host, self.engine)
            op.init_units(tree)
            # Announce this stage's outputs so later stages (this block
            # or the next) resolve against them before any pass stored.
            self.engine.declare_topics(
                s.topic for u in op.units for s in u.outputs
            )
            tree = self.engine.navigator.tree
            self._operators[op.name] = op
            self._plugin_of[op.name] = configurator.plugin_name
            if op.config.mode == "online":
                task = self.host.scheduler.add_callback(
                    f"{self.host.name}:analytics:{op.name}",
                    lambda ts, o=op: self._run_operator(o, ts),
                    op.config.interval_ns,
                    first_due=self.host.scheduler.clock.now + op.config.delay_ns,
                )
                self._tasks[op.name] = task
            if start:
                op.start()
        if self._fused_groups:
            # A live fusion plan may gain members (or lose eligibility —
            # the new block could subscribe to a fused intermediate).
            self.refresh_fusion()
        return operators

    def _run_operator(self, op: OperatorBase, ts: int) -> None:
        t0 = time.perf_counter_ns()
        op.compute(ts)
        self._m_busy.inc(time.perf_counter_ns() - t0)

    def unload_operator(self, name: str) -> None:
        """Stop and forget one operator (its task is disabled)."""
        op = self._operators.pop(name, None)
        if op is None:
            raise PluginError(f"no operator {name!r}")
        replan = bool(self._fused_groups)
        op.stop()
        task = self._tasks.pop(name, None)
        if task is not None:
            task.enabled = False
        self._plugin_of.pop(name, None)
        if replan:
            self.refresh_fusion()

    # ------------------------------------------------------------------
    # Pipeline fusion
    # ------------------------------------------------------------------

    def fused_groups(self) -> List[FusedGroup]:
        """The live fused groups, in registration order."""
        return list(self._fused_groups.values())

    def _fusion_specs(self) -> List[FusionSpec]:
        """Planner input for the live operators, registration order."""
        specs = []
        for op in self._operators.values():
            specs.append(
                FusionSpec(
                    name=op.name,
                    label=f"{self._plugin_of.get(op.name, '?')}/{op.name}",
                    config=op.config,
                    supports_batch=type(op).supports_batch,
                    is_job_plugin=isinstance(op, JobOperatorBase),
                    input_topics=frozenset(
                        t for u in op.units for t in u.inputs
                    ),
                    output_topics=frozenset(
                        s.topic for u in op.units for s in u.outputs
                    ),
                )
            )
        return specs

    def refresh_fusion(self) -> List[List[str]]:
        """(Re)plan fused groups over the currently loaded operators.

        Dissolves any existing groups first — member tasks were only
        *disabled* (they stay in the scheduler heap with their phase
        preserved), so dissolving re-enables them and restores the
        leader's per-operator callback.  Each planned group then runs
        as one scheduled pass at its leader's slot: the leader task's
        callback is rebound to the group driver and the other members'
        tasks are disabled.  Returns the planned member-name groups.
        """
        self._require_host()
        assert self.engine is not None
        for group in self._fused_groups.values():
            leader = group.ops[0]
            task = self._tasks.get(leader.name)
            if task is not None:
                task.fn = lambda ts, o=leader: self._run_operator(o, ts)
            for member in group.ops[1:]:
                task = self._tasks.get(member.name)
                if task is not None:
                    task.enabled = True
        self._fused_groups.clear()
        plan = plan_fusion(
            self._fusion_specs(),
            host_has_storage=getattr(self.host, "storage", None) is not None,
        )
        for names in plan.groups:
            ops = [self._operators[n] for n in names]
            leader_task = self._tasks.get(ops[0].name)
            if leader_task is None:
                continue  # leader lost its schedule slot; skip the group
            group = FusedGroup(
                name=f"{self.host.name}:fused:{'+'.join(names)}",
                ops=ops,
                host=self.host,
                engine=self.engine,
                fallback_counter=self._m_fusion_fallbacks,
            )
            leader_task.fn = lambda ts, g=group: self._run_fused_group(g, ts)
            for member in ops[1:]:
                task = self._tasks.get(member.name)
                if task is not None:
                    task.enabled = False
            self._fused_groups[ops[0].name] = group
        return plan.groups

    def _run_fused_group(self, group: FusedGroup, ts: int) -> None:
        t0 = time.perf_counter_ns()
        group.run(ts)
        elapsed = time.perf_counter_ns() - t0
        self._m_busy.inc(elapsed)
        self._m_fusion_pass.observe(elapsed / 1e9)

    # ------------------------------------------------------------------
    # Operator access and control
    # ------------------------------------------------------------------

    def operator(self, name: str) -> OperatorBase:
        """Look up an operator by instance name."""
        try:
            return self._operators[name]
        except KeyError:
            raise PluginError(f"no operator {name!r}") from None

    def operators(self) -> List[OperatorBase]:
        """All managed operators."""
        return list(self._operators.values())

    def start_operator(self, name: str) -> None:
        """Enable an operator's computation."""
        self.operator(name).start()

    def stop_operator(self, name: str) -> None:
        """Disable an operator's computation."""
        self.operator(name).stop()

    def trigger(self, name: str, unit_name: str, ts: Optional[int] = None) -> dict:
        """Invoke an on-demand operator for one unit (Section IV-b)."""
        self._require_host()
        assert self.engine is not None
        op = self.operator(name)
        when = ts if ts is not None else self.host.scheduler.clock.now
        if isinstance(op, JobOperatorBase):
            op.refresh_units(when)
        t0 = time.perf_counter_ns()
        try:
            return op.trigger(unit_name, when, self.engine.navigator.tree)
        finally:
            self._m_busy.inc(time.perf_counter_ns() - t0)

    def refresh_sensor_space(self) -> None:
        """Rebuild the Query Engine's navigator from the host's topics."""
        self._require_host()
        assert self.engine is not None
        self.engine.refresh_navigator()

    # ------------------------------------------------------------------
    # REST routes
    # ------------------------------------------------------------------

    def _route_plugins(self, request) -> RestResponse:
        return RestResponse.json({"plugins": sorted(set(self._plugin_of.values()))})

    def _route_list(self, request) -> RestResponse:
        return RestResponse.json(
            {"operators": [op.stats() for op in self._operators.values()]}
        )

    def _route_action(self, request) -> RestResponse:
        parts = request.path.strip("/").split("/")
        # /analytics/operators/<name>/<action>
        if len(parts) != 4:
            return RestResponse.error(
                "expected /analytics/operators/<name>/<action>", 400
            )
        name, action = parts[2], parts[3]
        try:
            if action == "start":
                self.start_operator(name)
                return RestResponse.json({"operator": name, "action": "start"})
            if action == "stop":
                self.stop_operator(name)
                return RestResponse.json({"operator": name, "action": "stop"})
            if action == "unload":
                self.unload_operator(name)
                return RestResponse.json({"operator": name, "action": "unload"})
            if action == "compute":
                unit = request.param("unit")
                if unit is None:
                    return RestResponse.error("missing 'unit' parameter", 400)
                values = self.trigger(name, unit)
                return RestResponse.json({"unit": unit, "values": values})
        except PluginError as exc:
            return RestResponse.error(str(exc), 404)
        except Exception as exc:  # bad unit names, resolution failures
            return RestResponse.error(str(exc), 400)
        return RestResponse.error(f"unknown action {action!r}", 400)

    def _parse_breaker_path(self, request):
        """``/analytics/units/<operator>/<unit path...>/breaker`` →
        ``(operator, unit_name)`` or an error response.

        Unit names are tree paths with slashes of their own, so the unit
        part is everything between the operator segment and the trailing
        ``breaker`` segment; the leading slash tree units carry is
        restored when the bare form doesn't name a unit.
        """
        parts = request.path.strip("/").split("/")
        if len(parts) < 5 or parts[:2] != ["analytics", "units"] or parts[-1] != "breaker":
            return None, RestResponse.error(
                "expected /analytics/units/<operator>/<unit>/breaker", 400
            )
        name, unit = parts[2], "/".join(parts[3:-1])
        try:
            op = self.operator(name)
        except PluginError as exc:
            return None, RestResponse.error(str(exc), 404)
        if not any(u.name == unit for u in op.units):
            slashed = "/" + unit
            if any(u.name == slashed for u in op.units):
                unit = slashed
        return (op, unit), None

    def _route_breaker_get(self, request) -> RestResponse:
        target, err = self._parse_breaker_path(request)
        if err is not None:
            return err
        op, unit = target
        try:
            return RestResponse.json(op.breaker_state(unit))
        except PluginError as exc:
            return RestResponse.error(str(exc), 404)

    def _route_breaker_put(self, request) -> RestResponse:
        target, err = self._parse_breaker_path(request)
        if err is not None:
            return err
        op, unit = target
        action = request.param("action")
        if action is None:
            return RestResponse.error("missing 'action' parameter", 400)
        try:
            return RestResponse.json(op.set_breaker(unit, action))
        except PluginError as exc:
            return RestResponse.error(str(exc), 404)
        except ConfigError as exc:
            return RestResponse.error(str(exc), 400)
