"""Per-unit circuit breakers for operator computation.

An operator whose unit keeps failing re-pays the full failure cost —
queries, exception handling, error accounting — on every pass, forever.
Production ODA quarantines such units instead: after N consecutive
failures the unit's breaker *opens* and the unit is skipped; after a
cooldown the breaker goes *half-open* and lets one probe computation
through; a successful probe closes the breaker, a failed one re-opens it
with a doubled cooldown (bounded by a ceiling).

The breaker counts in *passes*, not wall time: operators already run on
a fixed interval, so passes are the natural clock and stay meaningful
under simulated time.  State transitions happen inside
:class:`~repro.core.operator.OperatorBase`'s breaker lock (a sanitizer
seam) — parallel unit mode records failures from pool worker threads.
"""

from __future__ import annotations

from repro.common.errors import ConfigError

#: Breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"


class UnitBreaker:
    """Circuit breaker guarding one unit of one operator.

    Args:
        threshold: consecutive failures that trip the breaker.  ``0``
            disables automatic tripping (the breaker can still be
            tripped manually via REST).
        cooldown_passes: passes to wait before the first probe.
        max_cooldown_passes: ceiling of the probe backoff doubling.
    """

    __slots__ = (
        "threshold", "cooldown_passes", "max_cooldown_passes",
        "state", "failures", "trips", "probes", "recoveries",
        "_cooldown", "_wait",
    )

    def __init__(
        self,
        threshold: int,
        cooldown_passes: int = 4,
        max_cooldown_passes: int = 64,
    ):
        if threshold < 0:
            raise ConfigError(f"breaker threshold must be >= 0: {threshold}")
        if cooldown_passes < 1:
            raise ConfigError(
                f"breaker cooldown must be >= 1 pass: {cooldown_passes}"
            )
        self.threshold = int(threshold)
        self.cooldown_passes = int(cooldown_passes)
        self.max_cooldown_passes = max(
            int(max_cooldown_passes), self.cooldown_passes
        )
        self.state = CLOSED
        self.failures = 0  # consecutive failures while closed
        self.trips = 0  # times the breaker entered OPEN
        self.probes = 0  # half-open probe computations granted
        self.recoveries = 0  # probe successes that re-closed the breaker
        self._cooldown = self.cooldown_passes  # current backoff length
        self._wait = 0  # passes remaining until the next probe

    @property
    def quarantined(self) -> bool:
        """Whether the unit is currently being skipped."""
        return self.state == OPEN

    def allow(self) -> bool:
        """Whether the unit may compute this pass.

        Called once per pass per unit: open breakers tick their cooldown
        down here, so skipped passes are what ages a quarantine.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            self._wait -= 1
            if self._wait > 0:
                return False
            self.state = HALF_OPEN
            self.probes += 1
        return True  # half-open: the probe computation goes through

    def record_failure(self) -> None:
        """One failed computation of the unit."""
        if self.state in (OPEN, HALF_OPEN):
            # Failed probe: re-open with a doubled cooldown.
            self._cooldown = min(
                self._cooldown * 2, self.max_cooldown_passes
            )
            self._open()
            return
        self.failures += 1
        if self.threshold and self.failures >= self.threshold:
            self._open()

    def record_success(self) -> None:
        """One successful computation; closes the breaker."""
        if self.state != CLOSED:
            self.recoveries += 1
        self._close()

    def trip(self) -> None:
        """Force the breaker open (REST ``action=trip``)."""
        self._open()

    def reset(self) -> None:
        """Force the breaker closed (REST ``action=reset``); does not
        count as a recovery."""
        self._close()

    def _open(self) -> None:
        self.state = OPEN
        self.trips += 1
        self._wait = self._cooldown

    def _close(self) -> None:
        self.state = CLOSED
        self.failures = 0
        self._cooldown = self.cooldown_passes
        self._wait = 0

    def snapshot(self) -> dict:
        """REST/metrics view of the breaker."""
        return {
            "state": self.state,
            "failures": self.failures,
            "threshold": self.threshold,
            "trips": self.trips,
            "probes": self.probes,
            "recoveries": self.recoveries,
            "cooldown_passes": self._cooldown,
            "passes_until_probe": max(0, self._wait),
        }


def default_snapshot(threshold: int) -> dict:
    """The snapshot of a unit that never failed (no breaker allocated)."""
    return {
        "state": CLOSED,
        "failures": 0,
        "threshold": threshold,
        "trips": 0,
        "probes": 0,
        "recoveries": 0,
        "cooldown_passes": None,
        "passes_until_probe": 0,
    }


__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "UnitBreaker",
    "default_snapshot",
]
