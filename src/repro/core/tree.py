"""The sensor tree (Section III-A).

Sensor topics are file-system-like paths; splitting them yields a tree
whose internal nodes are system components (racks, chassis, nodes, CPUs)
and whose leaves are sensors.  Components may carry both sensors and
child components (a chassis has a ``power`` sensor *and* contains
servers, as in Figure 2).

Levels are numbered top-down starting at 0 for the children of the root;
the root itself is excluded from the representation, exactly as the
paper specifies for pattern navigation.  ``topdown`` therefore refers to
level 0 and ``bottomup`` to ``max_level``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.common.errors import TopicError
from repro.common.topics import join_topic, split_topic
from repro.sanitizer import hooks


class TreeNode:
    """One component in the sensor tree.

    Attributes:
        name: the node's own path segment (e.g. ``cpu07``).
        path: full component path (e.g. ``/rack00/chassis01/node03/cpu07``).
        level: 0-based depth below the root (root itself has level -1).
        children: child components by segment name.
        sensors: sensor names attached to this component mapped to their
            full topics.
    """

    __slots__ = ("name", "path", "level", "parent", "children", "sensors")

    def __init__(self, name: str, path: str, level: int, parent: Optional["TreeNode"]):
        self.name = name
        self.path = path
        self.level = level
        self.parent = parent
        self.children: Dict[str, TreeNode] = {}
        self.sensors: Dict[str, str] = {}

    def sensor_topic(self, name: str) -> Optional[str]:
        """Full topic of an attached sensor, or None."""
        return self.sensors.get(name)

    def iter_subtree(self) -> Iterator["TreeNode"]:
        """This node and every descendant, pre-order."""
        yield self
        for child in self.children.values():
            yield from child.iter_subtree()

    def ancestors(self) -> Iterator["TreeNode"]:
        """Every proper ancestor, nearest first (excludes the root)."""
        node = self.parent
        while node is not None and node.level >= 0:
            yield node
            node = node.parent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TreeNode({self.path!r}, level={self.level})"


class SensorTree:
    """Tree representation of a monitored system's sensor space.

    Built incrementally from sensor topics (:meth:`add_sensor`) or in
    bulk (:meth:`from_topics`).  Lookups used by pattern resolution —
    nodes at a level, node by path — are O(1) via indexes maintained on
    insertion.
    """

    def __init__(self) -> None:
        self.root = TreeNode("", "/", -1, None)
        self._by_path: Dict[str, TreeNode] = {"/": self.root}
        self._by_level: Dict[int, List[TreeNode]] = {}
        self._sensor_count = 0
        self._frozen = False
        self._generation = 0

    @property
    def generation(self) -> int:
        """Mutation counter: bumps on every add/remove, frozen or not.

        Compiled query plans and other structures derived from the tree
        record the generation they were built against and treat any
        difference as staleness — including hot-plugged sensors added
        after :meth:`freeze`.
        """
        return self._generation

    def freeze(self) -> None:
        """Mark construction finished: the tree is read-only from here.

        Pattern-resolved units hold direct references into the tree, so
        mutating it after unit resolution silently invalidates them.
        The flag is advisory — mutations still apply (legacy callers
        keep working) but the runtime sanitizer records each one as a
        read-only-after-build violation (rule R008).
        """
        self._frozen = True

    @property
    def frozen(self) -> bool:
        """Whether the tree has been marked read-only."""
        return self._frozen

    def _note_mutation(self, action: str, topic: str) -> None:
        self._generation += 1
        if self._frozen:
            san = hooks.CURRENT
            if san is not None:
                san.on_tree_mutation(action, topic)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_topics(cls, topics: Iterable[str]) -> "SensorTree":
        """Build a tree from an iterable of full sensor topics."""
        tree = cls()
        for topic in topics:
            tree.add_sensor(topic)
        return tree

    def _ensure_component(self, parts: List[str]) -> TreeNode:
        node = self.root
        for depth, seg in enumerate(parts):
            child = node.children.get(seg)
            if child is None:
                path = join_topic(parts[: depth + 1])
                child = TreeNode(seg, path, depth, node)
                node.children[seg] = child
                self._by_path[path] = child
                self._by_level.setdefault(depth, []).append(child)
            node = child
        return node

    def add_sensor(self, topic: str) -> TreeNode:
        """Insert a sensor topic; creates missing component nodes.

        The last topic segment becomes a sensor on the component named
        by the preceding segments.  Single-segment topics attach to an
        implicit top-level component is not allowed — a sensor must
        belong to a component (the paper's root holds e.g. ``db-uptime``,
        which we model as a sensor on the root).
        """
        self._note_mutation("add_sensor", topic)
        parts = split_topic(topic)
        name = parts[-1]
        if len(parts) == 1:
            component = self.root
        else:
            component = self._ensure_component(parts[:-1])
        if name in component.children:
            raise TopicError(
                f"{topic}: segment {name!r} is already a component node"
            )
        if name not in component.sensors:
            self._sensor_count += 1
        component.sensors[name] = join_topic(parts)
        return component

    def add_component(self, path: str) -> TreeNode:
        """Insert a (possibly sensor-less) component node."""
        self._note_mutation("add_component", path)
        return self._ensure_component(split_topic(path))

    def remove_sensor(self, topic: str) -> bool:
        """Remove a sensor; empty components are retained (cheap, and
        unit resolution only looks at levels/sensors)."""
        self._note_mutation("remove_sensor", topic)
        parts = split_topic(topic)
        comp_path = "/" if len(parts) == 1 else join_topic(parts[:-1])
        node = self._by_path.get(comp_path)
        if node is None or parts[-1] not in node.sensors:
            return False
        del node.sensors[parts[-1]]
        self._sensor_count -= 1
        return True

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    @property
    def max_level(self) -> int:
        """Deepest component level (the ``bottomup`` level); -1 if empty."""
        return max(self._by_level.keys(), default=-1)

    @property
    def n_sensors(self) -> int:
        """Number of distinct sensor topics in the tree."""
        return self._sensor_count

    def node(self, path: str) -> Optional[TreeNode]:
        """Component node by canonical path (``/`` for the root)."""
        if path in ("", "/"):
            return self.root
        try:
            return self._by_path.get(join_topic(split_topic(path)))
        except TopicError:
            return None

    def has_sensor(self, topic: str) -> bool:
        """Whether a full sensor topic exists."""
        parts = split_topic(topic)
        comp = "/" if len(parts) == 1 else join_topic(parts[:-1])
        node = self._by_path.get(comp)
        return node is not None and parts[-1] in node.sensors

    def nodes_at_level(self, level: int) -> List[TreeNode]:
        """All component nodes at an absolute level (0 = top)."""
        return list(self._by_level.get(level, ()))

    def resolve_level(self, anchor: str, offset: int) -> int:
        """Translate a (anchor, offset) pair into an absolute level.

        ``topdown+k`` maps to level ``k``; ``bottomup-k`` maps to
        ``max_level - k``.  Raises :class:`TopicError` for levels outside
        the tree.
        """
        if anchor == "topdown":
            level = offset
        elif anchor == "bottomup":
            level = self.max_level - offset
        else:
            raise TopicError(f"unknown level anchor {anchor!r}")
        if not (0 <= level <= self.max_level):
            raise TopicError(
                f"{anchor}{offset:+d} resolves to level {level}, outside "
                f"[0, {self.max_level}]"
            )
        return level

    def all_sensor_topics(self) -> List[str]:
        """Every sensor topic in the tree, pre-order."""
        out: List[str] = []
        for node in self.root.iter_subtree():
            out.extend(node.sensors.values())
        return out

    def hierarchically_related(self, a: TreeNode, b: TreeNode) -> bool:
        """Whether two nodes lie on one root-to-leaf path (Section III-B:
        connected by an ascending or descending path), or are the same."""
        if a is b:
            return True
        hi, lo = (a, b) if a.level < b.level else (b, a)
        node = lo.parent
        while node is not None:
            if node is hi:
                return True
            node = node.parent
        return False
