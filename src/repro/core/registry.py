"""Operator plugin registry.

The production framework loads operator plugins as shared libraries; the
Python reproduction registers operator classes under plugin names
instead.  The Operator Manager instantiates operators by looking up the
plugin name from a configuration block, passing host context (e.g. the
job source for job operator plugins) to constructors that declare it.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List, Type

from repro.common.errors import PluginError
from repro.core.operator import OperatorBase, OperatorConfig

_REGISTRY: Dict[str, Type[OperatorBase]] = {}


def register_operator_plugin(name: str, cls: Type[OperatorBase]) -> None:
    """Register an operator class under a plugin name."""
    if not (isinstance(cls, type) and issubclass(cls, OperatorBase)):
        raise PluginError(f"plugin {name!r} must be an OperatorBase subclass")
    _REGISTRY[name] = cls


def operator_plugin(name: str) -> Callable[[Type[OperatorBase]], Type[OperatorBase]]:
    """Class decorator registering an operator plugin::

        @operator_plugin("aggregator")
        class AggregatorOperator(OperatorBase): ...
    """

    def deco(cls: Type[OperatorBase]) -> Type[OperatorBase]:
        register_operator_plugin(name, cls)
        return cls

    return deco


def available_plugins() -> List[str]:
    """Names of all registered operator plugins."""
    # Importing the bundled plugin package registers its operators.
    import repro.plugins  # noqa: F401

    return sorted(_REGISTRY)


def get_plugin_class(name: str):
    """The registered operator class for a plugin name, or None.

    Used by the static analyzer to check plugin references and to tell
    job operator plugins (dynamic per-job units) from pattern-unit ones
    without instantiating anything.
    """
    import repro.plugins  # noqa: F401  (ensure bundled plugins registered)

    return _REGISTRY.get(name)


def create_operator(
    plugin_name: str, config: OperatorConfig, context: Dict[str, object]
) -> OperatorBase:
    """Instantiate one operator of ``plugin_name``.

    Constructor parameters beyond ``config`` are filled from ``context``
    by name (e.g. ``job_source``); missing context for a required
    parameter is a configuration error.
    """
    import repro.plugins  # noqa: F401  (ensure bundled plugins registered)

    cls = _REGISTRY.get(plugin_name)
    if cls is None:
        raise PluginError(
            f"unknown operator plugin {plugin_name!r}; "
            f"registered: {sorted(_REGISTRY)}"
        )
    sig = inspect.signature(cls.__init__)
    kwargs = {}
    for pname, param in list(sig.parameters.items())[2:]:  # skip self, config
        if pname in context:
            kwargs[pname] = context[pname]
        elif param.default is inspect.Parameter.empty:
            raise PluginError(
                f"plugin {plugin_name!r} requires context {pname!r} "
                f"which the host did not provide"
            )
    return cls(config, **kwargs)
