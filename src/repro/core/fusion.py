"""Fused pipeline execution (pipeline DAG fusion).

PR 4's compiled :class:`~repro.core.queryengine.QueryPlan` stops at
operator boundaries: a smoother → aggregator → health pipeline still
round-trips every intermediate result through the sensor cache (and,
when published, the broker) on every pass, then re-queries it one stage
later.  This module compiles a *fused group* — consecutive operators the
planner in :mod:`repro.core.pipeline` proved to form a private linear
chain — into one executable pass:

- the first member reads its external inputs through the host's real
  Query Engine (reusing its cached ``QueryPlan`` ring-buffer bindings
  and generation-counter invalidation);
- each intermediate member's results land in a :class:`FusedChannel`,
  a persistent right-aligned matrix mirroring exactly what the host's
  operator-output caches would have accumulated (one reading per pass,
  1 s host interval hint, capacity-clamped width) — no cache write, no
  publish, no re-query;
- downstream members query through a :class:`FusedEngine` proxy that
  serves channel topics as zero-copy window views and delegates
  everything else to the real engine;
- only the final member's results go through the ordinary
  ``store_results_batch``/operator-output fan-out.

Semantics preservation is strict: per-pass results are bit-for-bit
identical to the staged path (same float64 arithmetic on the same
right-aligned tails), missing-data and short-window error accounting is
unchanged (empty channel rows mirror empty caches), breaker-quarantined
units simply leave their channel rows unshifted exactly as they leave
caches unwritten, and an active runtime sanitizer makes the group fall
back to per-operator :meth:`~repro.core.operator.OperatorBase.compute`
— the staged, instrumented scalar path — for the pass.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import QueryError
from repro.common.timeutil import NS_PER_SEC
from repro.dcdb.cache import CacheView, SensorCache
from repro.core.queryengine import BatchWindow, QueryEngine
from repro.sanitizer import hooks

#: Fallback retention window when a host exposes no ``cache_window_ns``.
DEFAULT_CACHE_WINDOW_NS = 180 * NS_PER_SEC


def _window_count(window_ns: int) -> int:
    """Readings a consumer pulls from an operator-output channel.

    Operator-output caches are created with the host's 1 s interval
    hint (``Pusher._cache_for_sensor``), so the staged plan arithmetic
    is ``window // 1s + 1`` regardless of the producer's real cadence.
    The channel reproduces that formula exactly — parity depends on it.
    """
    return int(window_ns) // NS_PER_SEC + 1 if window_ns else 1


class FusedChannel:
    """Persistent window matrix for one intermediate member's outputs.

    One row per (unit, output sensor) in emission order; ``width``
    columns, right-aligned like a :class:`BatchWindow`.  A pass appends
    one column worth of produced values (a vectorized shift-left) and
    leaves non-produced rows untouched, mirroring how a staged pass
    leaves their caches unwritten.
    """

    __slots__ = ("topics", "row_of", "width", "values", "timestamps", "counts")

    def __init__(self, topics: Sequence[str], width: int) -> None:
        rows = len(topics)
        self.topics: Tuple[str, ...] = tuple(topics)
        self.row_of: Dict[str, int] = {t: i for i, t in enumerate(self.topics)}
        self.width = max(1, int(width))
        self.values = np.full((rows, self.width), np.nan, dtype=np.float64)
        self.timestamps = np.zeros((rows, self.width), dtype=np.int64)
        self.counts = np.zeros(rows, dtype=np.int64)

    def seed(self, prev: Optional["FusedChannel"], cache_lookup) -> None:
        """Warm rows from a predecessor channel (plan rebuild) or from
        the host's caches (fusion enabled after staged passes ran), so
        switching execution modes never loses window history."""
        for r, topic in enumerate(self.topics):
            if prev is not None:
                pr = prev.row_of.get(topic)
                if pr is not None:
                    n = min(int(prev.counts[pr]), self.width)
                    if n:
                        self.timestamps[r, -n:] = (
                            prev.timestamps[pr, prev.width - n:]
                        )
                        self.values[r, -n:] = prev.values[pr, prev.width - n:]
                        self.counts[r] = n
                    continue
            cache = cache_lookup(topic)
            if cache is not None and len(cache):
                self.counts[r] = cache.tail_into(
                    self.timestamps[r], self.values[r], self.width
                )

    def append(self, ts: int, rows: List[int], vals: List[float]) -> None:
        """Shift the produced rows left by one slot and write the new
        column; unproduced rows keep their (older) window verbatim."""
        if not rows:
            return
        if len(rows) == len(self.counts):
            # Every row produced — the steady-state vectorized path.
            if self.width > 1:
                self.values[:, :-1] = self.values[:, 1:]
                self.timestamps[:, :-1] = self.timestamps[:, 1:]
            self.values[:, -1] = vals
            self.timestamps[:, -1] = ts
            np.minimum(self.counts + 1, self.width, out=self.counts)
            return
        idx = np.asarray(rows, dtype=np.intp)
        if self.width > 1:
            self.values[idx, :-1] = self.values[idx, 1:]
            self.timestamps[idx, :-1] = self.timestamps[idx, 1:]
        self.values[idx, -1] = vals
        self.timestamps[idx, -1] = ts
        self.counts[idx] = np.minimum(self.counts[idx] + 1, self.width)

    def append_column(self, ts: int, vals: np.ndarray) -> None:
        """Vectorized append: one produced value per row, in row order.

        The fused driver uses this for uniform passes where a plugin's
        ``compute_batch_vector`` kernel emitted the whole column — the
        all-rows branch of :meth:`append` without the per-unit list
        assembly."""
        if self.width > 1:
            self.values[:, :-1] = self.values[:, 1:]
            self.timestamps[:, :-1] = self.timestamps[:, 1:]
        self.values[:, -1] = vals
        self.timestamps[:, -1] = ts
        np.minimum(self.counts + 1, self.width, out=self.counts)

    def append_results(self, ts: int, results) -> None:
        """Append one pass's :class:`UnitResult` list (emission order)."""
        rows: List[int] = []
        vals: List[float] = []
        row_of = self.row_of
        for unit, values in results:
            for sensor in unit.outputs:
                value = values.get(sensor.name)
                if value is None:
                    continue
                row = row_of.get(sensor.topic)
                if row is not None:
                    rows.append(row)
                    vals.append(float(value))
        self.append(ts, rows, vals)

    def serve_count(self, window_ns: int) -> int:
        """Valid columns a consumer window of ``window_ns`` may read."""
        return min(_window_count(window_ns), self.width)


class FusedEngine:
    """Query-engine proxy a fused member computes through.

    Topics bound to an upstream :class:`FusedChannel` are answered from
    the channel matrices — zero-copy views for ``fusion_safe``
    consumers, private copies otherwise; every other topic (raw sensor
    inputs of the first stages, out-of-group feeds) delegates to the
    real engine, keeping its compiled-plan cache and generation
    invalidation in charge.  Attribute access falls through to the real
    engine, so navigator/virtual-sensor surfaces stay available.
    """

    def __init__(
        self,
        real: QueryEngine,
        channel_of: Dict[str, Tuple[FusedChannel, int]],
        fusion_safe: bool = False,
    ) -> None:
        self._real = real
        self._channel_of = dict(channel_of)
        self._fusion_safe = bool(fusion_safe)
        # Dispatch memo: operators reuse their memoized batch layout
        # (the same topics tuple object every steady-state pass), so
        # one identity check replaces the per-topic channel scan.
        self._all_external: Optional[Tuple[str, ...]] = None
        self._whole_channel_topics: Optional[Tuple[str, ...]] = None
        self._whole_channel: Optional[FusedChannel] = None

    def __getattr__(self, name):
        return getattr(self._real, name)

    # Derived helpers reuse the real implementations over *this*
    # engine's query_relative, so channel topics stay visible to them.
    window_values = QueryEngine.window_values
    rate = QueryEngine.rate
    query_many_relative = QueryEngine.query_many_relative
    query_many_absolute = QueryEngine.query_many_absolute

    def latest(self, topic: str) -> CacheView:
        return self.query_relative(topic, 0)

    def _channel_tail(self, entry, count: int):
        channel, row = entry
        n = min(count, int(channel.counts[row]))
        if n <= 0:
            return None
        lo = channel.width - n
        return (
            channel.timestamps[row, lo:].copy(),
            channel.values[row, lo:].copy(),
        )

    def query_relative(self, topic: str, offset_ns: int) -> CacheView:
        entry = self._channel_of.get(topic)
        if entry is None:
            return self._real.query_relative(topic, offset_ns)
        if offset_ns < 0:
            raise QueryError(f"negative relative offset: {offset_ns}")
        tail = self._channel_tail(entry, _window_count(offset_ns))
        if tail is None:
            raise QueryError(f"no data available for sensor {topic}")
        view = CacheView._snapshot_of(*tail)
        san = hooks.CURRENT
        if san is not None:
            # Fallback passes run under the sanitizer: channel views get
            # the same invariant checks cache views would.
            san.on_query_view(topic, view)
        return view

    def query_absolute(self, topic: str, start_ts: int, end_ts: int) -> CacheView:
        entry = self._channel_of.get(topic)
        if entry is None:
            return self._real.query_absolute(topic, start_ts, end_ts)
        if start_ts > end_ts:
            raise QueryError(f"inverted range: {start_ts} > {end_ts}")
        channel, row = entry
        n = int(channel.counts[row])
        if not n:
            raise QueryError(f"no data available for sensor {topic}")
        ts = channel.timestamps[row, channel.width - n:]
        lo = int(np.searchsorted(ts, start_ts, side="left"))
        hi = int(np.searchsorted(ts, end_ts, side="right"))
        if lo >= hi:
            return CacheView.empty()
        val = channel.values[row, channel.width - n:]
        return CacheView._snapshot_of(ts[lo:hi].copy(), val[lo:hi].copy())

    def query_relative_batch(
        self, topics: Sequence[str], window_ns: int, key: object = None
    ) -> BatchWindow:
        topics = tuple(topics)  # identity-preserving when already a tuple
        if topics is self._all_external:
            return self._real.query_relative_batch(topics, window_ns, key=key)
        if topics is self._whole_channel_topics:
            return self._serve_whole_channel(topics, window_ns)
        channel_of = self._channel_of
        entries = [channel_of.get(t) for t in topics]
        if all(e is None for e in entries):
            self._all_external = topics
            return self._real.query_relative_batch(topics, window_ns, key=key)
        first = entries[0]
        if (
            first is not None
            and topics == first[0].topics
        ):
            # Whole-channel identity read: the dominant shape (a stage
            # consuming exactly its upstream's outputs, unit-aligned).
            self._whole_channel = first[0]
            self._whole_channel_topics = topics
            return self._serve_whole_channel(topics, window_ns)
        return self._gather(topics, entries, window_ns, key)

    def _serve_whole_channel(
        self, topics: Tuple[str, ...], window_ns: int
    ) -> BatchWindow:
        channel = self._whole_channel
        counts = np.minimum(channel.counts, channel.serve_count(window_ns))
        if self._fusion_safe:
            return BatchWindow(
                topics, channel.values, channel.timestamps, counts
            )
        return BatchWindow(
            topics,
            channel.values.copy(),
            channel.timestamps.copy(),
            counts,
        )

    def _gather(
        self,
        topics: Tuple[str, ...],
        entries: List[Optional[tuple]],
        window_ns: int,
        key: object,
    ) -> BatchWindow:
        """Mixed channel/external batch: assemble a right-aligned matrix
        row by row, delegating the external subset as one sub-batch."""
        ext_topics = [t for t, e in zip(topics, entries) if e is None]
        ext = None
        if ext_topics:
            ext_key = ("fused-ext", key) if key is not None else None
            ext = self._real.query_relative_batch(
                ext_topics, window_ns, key=ext_key
            )
        width = ext.width if ext is not None else 1
        tails: List[Optional[tuple]] = []
        for entry in entries:
            if entry is None:
                tails.append(None)
                continue
            channel, row = entry
            tail = self._channel_tail(entry, channel.serve_count(window_ns))
            tails.append(tail)
            if tail is not None:
                width = max(width, len(tail[0]))
        u = len(topics)
        values = np.full((u, width), np.nan, dtype=np.float64)
        timestamps = np.zeros((u, width), dtype=np.int64)
        counts = np.zeros(u, dtype=np.int64)
        ext_row = 0
        for i, (entry, tail) in enumerate(zip(entries, tails)):
            if entry is None:
                if ext is not None:
                    n = int(ext.counts[ext_row])
                    if n:
                        timestamps[i, width - n:] = ext.row_timestamps(ext_row)
                        values[i, width - n:] = ext.row_values(ext_row)
                        counts[i] = n
                    ext_row += 1
                continue
            if tail is not None:
                ts, val = tail
                n = len(ts)
                timestamps[i, width - n:] = ts
                values[i, width - n:] = val
                counts[i] = n
        return BatchWindow(topics, values, timestamps, counts)


class FusedPlan:
    """The compiled binding of one fused group.

    Holds the per-intermediate channels and the per-member proxy
    engines, stamped with the navigator generation and the producer
    unit identity it was compiled against — either moving (hot-plugged
    sensors, re-resolved units) invalidates the plan, exactly like a
    :class:`~repro.core.queryengine.QueryPlan`.
    """

    __slots__ = ("generation", "units_sig", "channels", "engines", "vector_ok")

    def __init__(
        self, generation, units_sig, channels, engines, vector_ok
    ) -> None:
        self.generation = generation
        self.units_sig = units_sig
        self.channels: List[FusedChannel] = channels
        self.engines: List[Optional[FusedEngine]] = engines
        #: Per intermediate member: one output per unit, so a vector
        #: kernel's column aligns 1:1 with the channel rows.
        self.vector_ok: List[bool] = vector_ok


class FusedGroup:
    """One scheduled fused pass over an ordered operator chain."""

    def __init__(
        self,
        name: str,
        ops: Sequence,
        host,
        engine: QueryEngine,
        fallback_counter=None,
    ) -> None:
        self.name = name
        self.ops = list(ops)
        self.host = host
        self.engine = engine
        self._m_fallbacks = fallback_counter
        self._plan: Optional[FusedPlan] = None

    def members(self) -> List[str]:
        return [op.name for op in self.ops]

    # ------------------------------------------------------------------
    # Plan compilation
    # ------------------------------------------------------------------

    def _units_sig(self) -> tuple:
        """Identity of every producer unit (terminal units may churn
        freely — job operators rebuild theirs each pass — without
        invalidating the channels, which never carry them)."""
        return tuple(id(u) for op in self.ops[:-1] for u in op.units)

    def _ensure_plan(self) -> FusedPlan:
        gen = self.engine.navigator.generation
        sig = self._units_sig()
        plan = self._plan
        if plan is not None and plan.generation == gen and plan.units_sig == sig:
            return plan
        return self._compile(gen, sig)

    def _compile(self, generation, units_sig) -> FusedPlan:
        cache_window_ns = getattr(
            self.host, "cache_window_ns", DEFAULT_CACHE_WINDOW_NS
        )
        capacity = SensorCache.capacity_for_duration(
            cache_window_ns, NS_PER_SEC
        )
        old = self._plan
        channels: List[FusedChannel] = []
        for i, op in enumerate(self.ops[:-1]):
            topics = [s.topic for u in op.units for s in u.outputs]
            width = 1
            for consumer in self.ops[i + 1:]:
                width = max(
                    width,
                    min(_window_count(consumer.config.window_ns), capacity),
                )
            channel = FusedChannel(topics, width)
            prev = (
                old.channels[i]
                if old is not None and i < len(old.channels)
                else None
            )
            channel.seed(prev, self.host.cache_for)
            channels.append(channel)
        engines: List[Optional[FusedEngine]] = [None]
        channel_of: Dict[str, Tuple[FusedChannel, int]] = {}
        for i in range(1, len(self.ops)):
            channel = channels[i - 1]
            channel_of = dict(channel_of)
            for row, topic in enumerate(channel.topics):
                channel_of[topic] = (channel, row)
            engines.append(
                FusedEngine(
                    self.engine,
                    channel_of,
                    fusion_safe=type(self.ops[i]).fusion_safe,
                )
            )
        vector_ok = [
            all(len(u.outputs) == 1 for u in op.units)
            for op in self.ops[:-1]
        ]
        plan = FusedPlan(generation, units_sig, channels, engines, vector_ok)
        self._plan = plan
        return plan

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, ts: int) -> None:
        """One scheduled pass: fused when allowed, staged otherwise."""
        if hooks.CURRENT is not None:
            self._run_staged(ts)
            return
        plan = self._ensure_plan()
        last = len(self.ops) - 1
        for i, op in enumerate(self.ops):
            proxy = plan.engines[i]
            vectored = i < last and plan.vector_ok[i]
            vector = None
            if proxy is None:
                if vectored:
                    vector, results = op.compute_fused_vector(ts)
                else:
                    results = op.compute_fused(ts)
            else:
                real = op.engine
                op.engine = proxy
                try:
                    if vectored:
                        vector, results = op.compute_fused_vector(ts)
                    else:
                        results = op.compute_fused(ts)
                finally:
                    op.engine = real
            if i < last:
                if vector is not None:
                    plan.channels[i].append_column(ts, vector)
                else:
                    plan.channels[i].append_results(ts, results)
            else:
                op._store_results(ts, results)
                op._store_operator_outputs(ts, results)

    def _run_staged(self, ts: int) -> None:
        """Sanitizer-veto fallback: every member runs its ordinary
        staged pass (instrumented scalar compute, full store/publish
        fan-out).  Downstream members still read through the channel
        proxies — the host caches hold no intermediate history from
        fused passes, the channels do — and the channels keep absorbing
        the intermediates so resuming fused execution later sees the
        same window history an always-staged run would have cached.
        Channel reads stay bit-exact with cache reads here because
        ``SensorCache.view_relative`` with the 1 s operator-output
        interval hint is count-bounded by the same arithmetic as
        :func:`_window_count`."""
        if self._m_fallbacks is not None:
            self._m_fallbacks.inc()
        plan = self._ensure_plan()
        last = len(self.ops) - 1
        for i, op in enumerate(self.ops):
            proxy = plan.engines[i]
            if proxy is None:
                results = op.compute(ts)
            else:
                real = op.engine
                op.engine = proxy
                try:
                    results = op.compute(ts)
                finally:
                    op.engine = real
            if i < last:
                plan.channels[i].append_results(ts, results)
