"""Pattern expressions (Sections III-B and III-C).

A pattern expression describes a sensor relative to the sensor tree
instead of naming it absolutely::

    <topdown+1>power
    <bottomup, filter cpu>cpu-cycles
    <bottomup-1>healthy
    power                      # no pattern: the unit's own node

The angle-bracket prefix drives *vertical navigation*: ``topdown`` is the
highest level of the tree (level 0, the root being excluded) and
``bottomup`` the lowest, with relative offsets reaching the levels in
between.  The optional ``filter`` clause drives *horizontal navigation*:
a regular expression restricting which nodes of that level belong to the
expression's *domain*.  An expression without brackets anchors at the
unit's own node, like a bare relative path in a file system.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.errors import ConfigError
from repro.core.tree import SensorTree, TreeNode

_PATTERN_RE = re.compile(
    r"""^<\s*
        (?P<anchor>topdown|bottomup)
        (?:\s*(?P<sign>[+-])\s*(?P<offset>\d+))?
        (?:\s*,\s*filter\s+(?P<filter>[^>]+?))?
        \s*>\s*
        (?P<sensor>\S+)$""",
    re.VERBOSE,
)


@dataclass(frozen=True)
class PatternExpression:
    """A parsed pattern expression.

    Attributes:
        sensor: the sensor name (last topic segment) being requested.
        anchor: ``'topdown'``, ``'bottomup'`` or ``'unit'`` (no
            brackets: resolve at the unit's own node).
        offset: level offset; positive values move *down* from
            ``topdown`` and *up* from ``bottomup``, per the paper's
            ``topdown+k`` / ``bottomup-k`` notation.
        filter: optional regular expression applied to node names (or to
            full paths when it contains a ``/``) for horizontal
            filtering.
    """

    sensor: str
    anchor: str = "unit"
    offset: int = 0
    filter: Optional[str] = None
    _filter_re: Optional[re.Pattern] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.anchor not in ("unit", "topdown", "bottomup"):
            raise ConfigError(f"invalid pattern anchor {self.anchor!r}")
        if self.offset < 0:
            raise ConfigError(
                f"pattern offsets are written with their direction "
                f"(topdown+k / bottomup-k); got negative {self.offset}"
            )
        if self.filter is not None:
            try:
                object.__setattr__(self, "_filter_re", re.compile(self.filter))
            except re.error as exc:
                raise ConfigError(
                    f"invalid filter regex {self.filter!r}: {exc}"
                ) from exc

    # ------------------------------------------------------------------
    # Parsing / formatting
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "PatternExpression":
        """Parse the textual form used in configuration blocks."""
        text = text.strip()
        if not text:
            raise ConfigError("empty pattern expression")
        if not text.startswith("<"):
            if "/" in text or "<" in text or ">" in text:
                raise ConfigError(
                    f"bare sensor names must be plain segments: {text!r}"
                )
            return cls(sensor=text)
        match = _PATTERN_RE.match(text)
        if match is None:
            raise ConfigError(f"malformed pattern expression: {text!r}")
        anchor = match.group("anchor")
        sign = match.group("sign")
        offset = int(match.group("offset") or 0)
        if offset and (
            (anchor == "topdown" and sign != "+")
            or (anchor == "bottomup" and sign != "-")
        ):
            raise ConfigError(
                f"{text!r}: topdown accepts '+' offsets, bottomup '-' offsets"
            )
        filt = match.group("filter")
        return cls(
            sensor=match.group("sensor"),
            anchor=anchor,
            offset=offset,
            filter=filt.strip() if filt else None,
        )

    def __str__(self) -> str:
        if self.anchor == "unit":
            return self.sensor
        off = ""
        if self.offset:
            off = f"+{self.offset}" if self.anchor == "topdown" else f"-{self.offset}"
        filt = f", filter {self.filter}" if self.filter else ""
        return f"<{self.anchor}{off}{filt}>{self.sensor}"

    # ------------------------------------------------------------------
    # Domain computation
    # ------------------------------------------------------------------

    def matches_node(self, node: TreeNode) -> bool:
        """Whether ``node`` passes the expression's horizontal filter.

        Filters containing a ``/`` match against the full component
        path, others against the node's own name.
        """
        if self._filter_re is None:
            return True
        target = node.path if "/" in (self.filter or "") else node.name
        return self._filter_re.search(target) is not None

    # Backwards-compatible internal alias.
    _passes_filter = matches_node

    def domain(
        self, tree: SensorTree, unit_node: Optional[TreeNode] = None
    ) -> List[TreeNode]:
        """The set of tree nodes this expression matches.

        For ``unit``-anchored expressions the domain is the unit's own
        node (which must then be supplied).  For ``topdown``/``bottomup``
        anchors it is every node of the resolved level passing the
        filter.
        """
        if self.anchor == "unit":
            if unit_node is None:
                raise ConfigError(
                    f"expression {self!s} anchors at the unit but no unit "
                    f"node was supplied"
                )
            return [unit_node]
        level = tree.resolve_level(self.anchor, self.offset)
        return [n for n in tree.nodes_at_level(level) if self._passes_filter(n)]


def parse_expressions(texts: List[str]) -> List[PatternExpression]:
    """Parse a list of configuration strings into expressions."""
    return [PatternExpression.parse(t) for t in texts]
