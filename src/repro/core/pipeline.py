"""Analysis pipelines (Section IV-d).

Because online operator outputs are ordinary DCDB sensors, operators can
consume the outputs of other operators, forming multi-stage pipelines —
possibly spanning hosts (Pushers computing derived metrics feeding a
Collect Agent aggregation, as in the PerSyst case study) and ending in
control operators that close feedback loops.

This module adds a thin deployment helper: a :class:`Pipeline` is an
ordered list of stages, each a plugin configuration targeted at a host.
``deploy`` loads stages in order, refreshing each host's sensor space
first so later stages can resolve pattern units against the sensors
earlier stages (or remote hosts) publish.  Stage interval/delay settings
remain the user's responsibility, exactly as in the real system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.common.errors import ConfigError, UnitResolutionError
from repro.core.operator import JobOperatorBase, OperatorBase, OperatorConfig
from repro.core.tree import SensorTree
from repro.core.units import Unit, UnitResolver

if TYPE_CHECKING:  # annotation-only; manager imports the planner below
    from repro.core.manager import OperatorManager


@dataclass
class PipelineStage:
    """One stage: a plugin config loaded on one analytics manager."""

    manager: OperatorManager
    config: dict
    #: Human-readable label for reporting.
    label: str = ""

    def __post_init__(self) -> None:
        if "plugin" not in self.config:
            raise ConfigError("pipeline stage config must name its 'plugin'")
        if not self.label:
            self.label = self.config["plugin"]


class Pipeline:
    """Ordered multi-stage analysis deployment."""

    def __init__(self, stages: Sequence[PipelineStage]) -> None:
        if not stages:
            raise ConfigError("a pipeline needs at least one stage")
        self.stages = list(stages)
        self._operators: Dict[str, List[OperatorBase]] = {}

    def deploy(self, start: bool = True) -> Dict[str, List[OperatorBase]]:
        """Load every stage in order; returns operators per stage label.

        Before each stage loads, its manager's sensor space is refreshed
        so units can bind to sensors created by earlier stages.
        """
        for stage in self.stages:
            stage.manager.refresh_sensor_space()
            ops = stage.manager.load_plugin(stage.config, start=start)
            self._operators.setdefault(stage.label, []).extend(ops)
        # All stages are in place: let each distinct manager plan fused
        # groups over its now-complete operator sequence.
        seen = set()
        for stage in self.stages:
            if id(stage.manager) in seen:
                continue
            seen.add(id(stage.manager))
            stage.manager.refresh_fusion()
        return dict(self._operators)

    def operators(self, label: str) -> List[OperatorBase]:
        """Operators deployed under a stage label."""
        return list(self._operators.get(label, ()))

    def stop(self) -> None:
        """Stop every deployed operator."""
        for ops in self._operators.values():
            for op in ops:
                op.stop()

    def start(self) -> None:
        """(Re)start every deployed operator."""
        for ops in self._operators.values():
            for op in ops:
                op.start()


# ----------------------------------------------------------------------
# Resolved-model export (static consumers)
# ----------------------------------------------------------------------
#
# The dataflow analyzer (repro.analysis.flow) needs the *resolved*
# deployment — parsed operator configs plus the concrete units their
# patterns expand to against a host's sensor tree — without building a
# single runtime component.  Unit resolution is a pure function of the
# tree (repro.core.units), so this export reuses exactly the machinery
# Pipeline.deploy runs, minus operators, managers and scheduling.


@dataclass
class ResolvedOperator:
    """One operator's statically resolved view.

    ``units`` is empty when the operator is a job plugin (units are
    created per running job) or when resolution failed;
    ``resolution_error`` carries the reason in the latter case.
    """

    block_index: int
    plugin: str
    name: str
    config: OperatorConfig
    units: List[Unit] = field(default_factory=list)
    is_job_plugin: bool = False
    resolution_error: str = ""

    @property
    def label(self) -> str:
        return f"{self.plugin}/{self.name}"

    def output_topics(self) -> List[str]:
        """Every concrete output topic across the resolved units."""
        return [s.topic for u in self.units for s in u.outputs]


@dataclass
class ResolvedPipeline:
    """An ordered list of plugin blocks resolved against one host tree.

    ``tree`` is a private copy of the input tree with every stage's
    output sensors materialized, exactly as :meth:`Pipeline.deploy`
    refreshes the host's sensor space between stages.
    """

    host: str
    tree: SensorTree
    operators: List[ResolvedOperator] = field(default_factory=list)

    def fusion_plan(self, host_has_storage: bool = False) -> "FusionPlan":
        """Run the fusion planner over this resolved pipeline.

        Builds one :class:`FusionSpec` per resolved operator (plugin
        batch capability looked up without instantiation) and plans the
        same groups the runtime manager would form, so the static flow
        analyzer and the live deployment agree on eligibility.
        """
        from repro.core.registry import get_plugin_class

        specs = []
        for op in self.operators:
            cls = get_plugin_class(op.plugin)
            specs.append(
                FusionSpec(
                    name=op.name,
                    label=op.label,
                    config=op.config,
                    supports_batch=bool(getattr(cls, "supports_batch", False)),
                    is_job_plugin=op.is_job_plugin,
                    input_topics=frozenset(
                        t for u in op.units for t in u.inputs
                    ),
                    output_topics=frozenset(op.output_topics()),
                )
            )
        return plan_fusion(specs, host_has_storage=host_has_storage)


def resolve_pipeline(
    blocks: Sequence[dict],
    tree: SensorTree,
    host: str = "",
) -> ResolvedPipeline:
    """Resolve plugin blocks against a sensor tree without instantiation.

    Blocks are processed in deployment order; each stage's resolved
    output sensors are added to the (copied) tree before the next stage
    resolves, mirroring staged pipeline deployment.  Malformed blocks or
    operators are skipped silently — the structural analyzer
    (:mod:`repro.analysis.config`) owns reporting those.
    """
    from repro.core.configurator import parse_operator_config
    from repro.core.registry import get_plugin_class

    work = SensorTree.from_topics(tree.all_sensor_topics())
    resolved = ResolvedPipeline(host=host, tree=work)
    for i, block in enumerate(blocks):
        if not isinstance(block, dict):
            continue
        plugin = block.get("plugin")
        operators = block.get("operators")
        if not isinstance(plugin, str) or not isinstance(operators, dict):
            continue
        cls = get_plugin_class(plugin)
        is_job = isinstance(cls, type) and issubclass(cls, JobOperatorBase)
        for name, op_block in operators.items():
            if not isinstance(op_block, dict):
                continue
            try:
                config = parse_operator_config(name, op_block)
            except ConfigError:
                continue  # structurally invalid; reported by the analyzer
            entry = ResolvedOperator(
                block_index=i, plugin=plugin, name=name, config=config,
                is_job_plugin=is_job,
            )
            if not is_job and config.outputs:
                entry.units, entry.resolution_error = _resolve_units(
                    work, config
                )
                for unit in entry.units:
                    for sensor in unit.outputs:
                        _add_topic(work, sensor.topic)
            resolved.operators.append(entry)
    return resolved


def _resolve_units(tree: SensorTree, config: OperatorConfig):
    """(units, error) of one pattern-unit config; never raises."""
    try:
        resolver = UnitResolver(
            config.inputs, config.outputs, relaxed=True,
            publish_outputs=config.publish_outputs,
        )
        return resolver.resolve(tree), ""
    except (ConfigError, UnitResolutionError) as exc:
        return [], str(exc)


def _add_topic(tree: SensorTree, topic: str) -> None:
    from repro.common.errors import TopicError

    try:
        tree.add_sensor(topic)
    except TopicError:
        pass  # collides with a component node; resolution rules apply


# ----------------------------------------------------------------------
# Fusion planner
# ----------------------------------------------------------------------
#
# A fused group is a maximal run of *consecutive* operators (manager
# registration order == block order) forming a linear chain: each
# member consumes the previous member's output topics, all members
# share one sampling period, and no intermediate output has a consumer
# outside the group.  Consecutiveness is load-bearing, not cosmetic:
# the scheduler breaks same-tick ties by registration order, so a
# fused group executing at its leader's slot is order-equivalent to
# the staged passes only when nothing else was registered in between.
# The planner is pure (no runtime state) so the manager and the static
# flow analyzer (F013) share one source of eligibility truth.

#: Blocked-chain reasons surfaced as F013 info diagnostics.  Other
#: reasons (explicit ``fusion: false``, on-demand mode, job-plugin
#: producers, no chaining at all) stay silent — they are either
#: deliberate opt-outs or structurally meaningless to report.
REPORTABLE_FUSION_BLOCKS = (
    "batch-disabled",
    "period-mismatch",
    "external-subscriber",
)


@dataclass
class FusionSpec:
    """One operator's planner-facing summary (runtime or static)."""

    name: str
    config: OperatorConfig
    supports_batch: bool = False
    is_job_plugin: bool = False
    input_topics: frozenset = frozenset()
    output_topics: frozenset = frozenset()
    label: str = ""

    def __post_init__(self) -> None:
        if not self.label:
            self.label = self.name


@dataclass
class FusionBlock:
    """An adjacent chain that would fuse but for ``reason``."""

    upstream: str
    downstream: str
    reason: str
    detail: str = ""


@dataclass
class FusionPlan:
    """Planner output: fused groups plus reportable blocked chains."""

    groups: List[List[str]] = field(default_factory=list)
    blocked: List[FusionBlock] = field(default_factory=list)


def _batch_capable(spec: FusionSpec) -> bool:
    """Whether the member can run its pass inside a fused group."""
    if spec.config.batch is False:
        return False
    return bool(
        spec.supports_batch
        or spec.config.batch is True
        or spec.config.fusion is True
    )


def _can_lead(spec: FusionSpec) -> bool:
    """Whether the spec may open a group (i.e. become a producer)."""
    return (
        spec.config.mode == "online"
        and spec.config.fusion is not False
        and not spec.is_job_plugin
        and _batch_capable(spec)
    )


def _chain_verdict(
    tail: FusionSpec,
    consumer: FusionSpec,
    group: List[FusionSpec],
    specs: Sequence[FusionSpec],
    host_has_storage: bool,
) -> Optional[tuple]:
    """``None`` if ``consumer`` may join the group behind ``tail``,
    else ``(reason, detail)`` explaining why the chain breaks."""
    forced_job = consumer.is_job_plugin and consumer.config.fusion is True
    chained = bool(consumer.input_topics & tail.output_topics) or forced_job
    if not chained:
        return ("not-chained", "")
    if consumer.config.mode != "online":
        return ("mode", f"{consumer.label} is {consumer.config.mode}")
    if consumer.config.fusion is False or tail.config.fusion is False:
        return ("opt-out", "fusion: false")
    if consumer.is_job_plugin and not forced_job:
        return ("job", "job operators join only with fusion: true")
    if tail.is_job_plugin:
        return ("job", "job operators cannot produce fused intermediates")
    if not _batch_capable(consumer):
        return (
            "batch-disabled",
            f"{consumer.label} has batch: false"
            if consumer.config.batch is False
            else f"{consumer.label} has no vectorized kernel "
            f"(set batch/fusion: true to force)",
        )
    if (
        consumer.config.interval_ns != tail.config.interval_ns
        or consumer.config.delay_ns != tail.config.delay_ns
    ):
        return (
            "period-mismatch",
            f"{tail.label} runs every {tail.config.interval_ns}ns "
            f"(delay {tail.config.delay_ns}ns) but {consumer.label} every "
            f"{consumer.config.interval_ns}ns "
            f"(delay {consumer.config.delay_ns}ns)",
        )
    # ``tail`` would become an intermediate: its per-pass outputs must
    # have no subscriber outside the group, or skipping the cache write
    # and broker publish changes observable behavior.
    if tail.config.publish_outputs:
        return (
            "external-subscriber",
            f"{tail.label} publishes its outputs over MQTT "
            "(set publish_outputs: false on private intermediates)",
        )
    if host_has_storage:
        return (
            "external-subscriber",
            "the host's storage backend persists every stored reading",
        )
    if tail.config.operator_outputs:
        return (
            "external-subscriber",
            f"{tail.label} stores operator-level aggregate outputs",
        )
    members = {id(s) for s in group} | {id(consumer)}
    for other in specs:
        if id(other) in members:
            continue
        if other.input_topics & tail.output_topics:
            return (
                "external-subscriber",
                f"{tail.label} outputs are also consumed by {other.label}",
            )
    return None


def plan_fusion(
    specs: Sequence[FusionSpec], host_has_storage: bool = False
) -> FusionPlan:
    """Greedily group consecutive fusable chains.

    ``specs`` must be in manager registration order.  Returns groups of
    ≥ 2 member names plus the blocked adjacencies whose reason is worth
    surfacing (:data:`REPORTABLE_FUSION_BLOCKS`).
    """
    plan = FusionPlan()
    current: List[FusionSpec] = []
    for spec in specs:
        if current:
            verdict = _chain_verdict(
                current[-1], spec, current, specs, host_has_storage
            )
            if verdict is None:
                current.append(spec)
                continue
            reason, detail = verdict
            if reason in REPORTABLE_FUSION_BLOCKS:
                plan.blocked.append(
                    FusionBlock(
                        upstream=current[-1].label,
                        downstream=spec.label,
                        reason=reason,
                        detail=detail,
                    )
                )
            if len(current) >= 2:
                plan.groups.append([s.name for s in current])
        current = [spec] if _can_lead(spec) else []
    if len(current) >= 2:
        plan.groups.append([s.name for s in current])
    return plan


def replicate_topics(
    topics: Sequence[str], source_root: str, target_roots: Sequence[str]
) -> List[str]:
    """Map topics under one component root onto sibling roots.

    A pusher pipeline is resolved against one representative node's
    tree; its published outputs exist on *every* node.  This helper
    rewrites ``/rack00/.../node00/avg-power`` to each node path so the
    agent-side model sees the whole fleet's derived sensors.
    """
    source = source_root.rstrip("/")
    out: List[str] = []
    for topic in topics:
        if not topic.startswith(source + "/"):
            continue
        suffix = topic[len(source):]
        out.extend(f"{root.rstrip('/')}{suffix}" for root in target_roots)
    return out
