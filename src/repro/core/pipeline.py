"""Analysis pipelines (Section IV-d).

Because online operator outputs are ordinary DCDB sensors, operators can
consume the outputs of other operators, forming multi-stage pipelines —
possibly spanning hosts (Pushers computing derived metrics feeding a
Collect Agent aggregation, as in the PerSyst case study) and ending in
control operators that close feedback loops.

This module adds a thin deployment helper: a :class:`Pipeline` is an
ordered list of stages, each a plugin configuration targeted at a host.
``deploy`` loads stages in order, refreshing each host's sensor space
first so later stages can resolve pattern units against the sensors
earlier stages (or remote hosts) publish.  Stage interval/delay settings
remain the user's responsibility, exactly as in the real system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigError, UnitResolutionError
from repro.core.manager import OperatorManager
from repro.core.operator import JobOperatorBase, OperatorBase, OperatorConfig
from repro.core.tree import SensorTree
from repro.core.units import Unit, UnitResolver


@dataclass
class PipelineStage:
    """One stage: a plugin config loaded on one analytics manager."""

    manager: OperatorManager
    config: dict
    #: Human-readable label for reporting.
    label: str = ""

    def __post_init__(self) -> None:
        if "plugin" not in self.config:
            raise ConfigError("pipeline stage config must name its 'plugin'")
        if not self.label:
            self.label = self.config["plugin"]


class Pipeline:
    """Ordered multi-stage analysis deployment."""

    def __init__(self, stages: Sequence[PipelineStage]) -> None:
        if not stages:
            raise ConfigError("a pipeline needs at least one stage")
        self.stages = list(stages)
        self._operators: Dict[str, List[OperatorBase]] = {}

    def deploy(self, start: bool = True) -> Dict[str, List[OperatorBase]]:
        """Load every stage in order; returns operators per stage label.

        Before each stage loads, its manager's sensor space is refreshed
        so units can bind to sensors created by earlier stages.
        """
        for stage in self.stages:
            stage.manager.refresh_sensor_space()
            ops = stage.manager.load_plugin(stage.config, start=start)
            self._operators.setdefault(stage.label, []).extend(ops)
        return dict(self._operators)

    def operators(self, label: str) -> List[OperatorBase]:
        """Operators deployed under a stage label."""
        return list(self._operators.get(label, ()))

    def stop(self) -> None:
        """Stop every deployed operator."""
        for ops in self._operators.values():
            for op in ops:
                op.stop()

    def start(self) -> None:
        """(Re)start every deployed operator."""
        for ops in self._operators.values():
            for op in ops:
                op.start()


# ----------------------------------------------------------------------
# Resolved-model export (static consumers)
# ----------------------------------------------------------------------
#
# The dataflow analyzer (repro.analysis.flow) needs the *resolved*
# deployment — parsed operator configs plus the concrete units their
# patterns expand to against a host's sensor tree — without building a
# single runtime component.  Unit resolution is a pure function of the
# tree (repro.core.units), so this export reuses exactly the machinery
# Pipeline.deploy runs, minus operators, managers and scheduling.


@dataclass
class ResolvedOperator:
    """One operator's statically resolved view.

    ``units`` is empty when the operator is a job plugin (units are
    created per running job) or when resolution failed;
    ``resolution_error`` carries the reason in the latter case.
    """

    block_index: int
    plugin: str
    name: str
    config: OperatorConfig
    units: List[Unit] = field(default_factory=list)
    is_job_plugin: bool = False
    resolution_error: str = ""

    @property
    def label(self) -> str:
        return f"{self.plugin}/{self.name}"

    def output_topics(self) -> List[str]:
        """Every concrete output topic across the resolved units."""
        return [s.topic for u in self.units for s in u.outputs]


@dataclass
class ResolvedPipeline:
    """An ordered list of plugin blocks resolved against one host tree.

    ``tree`` is a private copy of the input tree with every stage's
    output sensors materialized, exactly as :meth:`Pipeline.deploy`
    refreshes the host's sensor space between stages.
    """

    host: str
    tree: SensorTree
    operators: List[ResolvedOperator] = field(default_factory=list)


def resolve_pipeline(
    blocks: Sequence[dict],
    tree: SensorTree,
    host: str = "",
) -> ResolvedPipeline:
    """Resolve plugin blocks against a sensor tree without instantiation.

    Blocks are processed in deployment order; each stage's resolved
    output sensors are added to the (copied) tree before the next stage
    resolves, mirroring staged pipeline deployment.  Malformed blocks or
    operators are skipped silently — the structural analyzer
    (:mod:`repro.analysis.config`) owns reporting those.
    """
    from repro.core.configurator import parse_operator_config
    from repro.core.registry import get_plugin_class

    work = SensorTree.from_topics(tree.all_sensor_topics())
    resolved = ResolvedPipeline(host=host, tree=work)
    for i, block in enumerate(blocks):
        if not isinstance(block, dict):
            continue
        plugin = block.get("plugin")
        operators = block.get("operators")
        if not isinstance(plugin, str) or not isinstance(operators, dict):
            continue
        cls = get_plugin_class(plugin)
        is_job = isinstance(cls, type) and issubclass(cls, JobOperatorBase)
        for name, op_block in operators.items():
            if not isinstance(op_block, dict):
                continue
            try:
                config = parse_operator_config(name, op_block)
            except ConfigError:
                continue  # structurally invalid; reported by the analyzer
            entry = ResolvedOperator(
                block_index=i, plugin=plugin, name=name, config=config,
                is_job_plugin=is_job,
            )
            if not is_job and config.outputs:
                entry.units, entry.resolution_error = _resolve_units(
                    work, config
                )
                for unit in entry.units:
                    for sensor in unit.outputs:
                        _add_topic(work, sensor.topic)
            resolved.operators.append(entry)
    return resolved


def _resolve_units(tree: SensorTree, config: OperatorConfig):
    """(units, error) of one pattern-unit config; never raises."""
    try:
        resolver = UnitResolver(
            config.inputs, config.outputs, relaxed=True,
            publish_outputs=config.publish_outputs,
        )
        return resolver.resolve(tree), ""
    except (ConfigError, UnitResolutionError) as exc:
        return [], str(exc)


def _add_topic(tree: SensorTree, topic: str) -> None:
    from repro.common.errors import TopicError

    try:
        tree.add_sensor(topic)
    except TopicError:
        pass  # collides with a component node; resolution rules apply


def replicate_topics(
    topics: Sequence[str], source_root: str, target_roots: Sequence[str]
) -> List[str]:
    """Map topics under one component root onto sibling roots.

    A pusher pipeline is resolved against one representative node's
    tree; its published outputs exist on *every* node.  This helper
    rewrites ``/rack00/.../node00/avg-power`` to each node path so the
    agent-side model sees the whole fleet's derived sensors.
    """
    source = source_root.rstrip("/")
    out: List[str] = []
    for topic in topics:
        if not topic.startswith(source + "/"):
            continue
        suffix = topic[len(source):]
        out.extend(f"{root.rstrip('/')}{suffix}" for root in target_roots)
    return out
