"""Analysis pipelines (Section IV-d).

Because online operator outputs are ordinary DCDB sensors, operators can
consume the outputs of other operators, forming multi-stage pipelines —
possibly spanning hosts (Pushers computing derived metrics feeding a
Collect Agent aggregation, as in the PerSyst case study) and ending in
control operators that close feedback loops.

This module adds a thin deployment helper: a :class:`Pipeline` is an
ordered list of stages, each a plugin configuration targeted at a host.
``deploy`` loads stages in order, refreshing each host's sensor space
first so later stages can resolve pattern units against the sensors
earlier stages (or remote hosts) publish.  Stage interval/delay settings
remain the user's responsibility, exactly as in the real system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.common.errors import ConfigError
from repro.core.manager import OperatorManager
from repro.core.operator import OperatorBase


@dataclass
class PipelineStage:
    """One stage: a plugin config loaded on one analytics manager."""

    manager: OperatorManager
    config: dict
    #: Human-readable label for reporting.
    label: str = ""

    def __post_init__(self) -> None:
        if "plugin" not in self.config:
            raise ConfigError("pipeline stage config must name its 'plugin'")
        if not self.label:
            self.label = self.config["plugin"]


class Pipeline:
    """Ordered multi-stage analysis deployment."""

    def __init__(self, stages: Sequence[PipelineStage]) -> None:
        if not stages:
            raise ConfigError("a pipeline needs at least one stage")
        self.stages = list(stages)
        self._operators: Dict[str, List[OperatorBase]] = {}

    def deploy(self, start: bool = True) -> Dict[str, List[OperatorBase]]:
        """Load every stage in order; returns operators per stage label.

        Before each stage loads, its manager's sensor space is refreshed
        so units can bind to sensors created by earlier stages.
        """
        for stage in self.stages:
            stage.manager.refresh_sensor_space()
            ops = stage.manager.load_plugin(stage.config, start=start)
            self._operators.setdefault(stage.label, []).extend(ops)
        return dict(self._operators)

    def operators(self, label: str) -> List[OperatorBase]:
        """Operators deployed under a stage label."""
        return list(self._operators.get(label, ()))

    def stop(self) -> None:
        """Stop every deployed operator."""
        for ops in self._operators.values():
            for op in ops:
                op.stop()

    def start(self) -> None:
        """(Re)start every deployed operator."""
        for ops in self._operators.values():
            for op in ops:
                op.start()
