"""The Configurator (Section V-C-2).

A configurator reads a plugin's configuration block and instantiates
operators accordingly, together with their units.  Configuration is a
plain dict (trivially loadable from JSON), shaped like::

    {
        "plugin": "aggregator",
        "operators": {
            "avgpower": {
                "interval_ms": 1000,
                "mode": "online",
                "unit_mode": "sequential",
                "window_ms": 5000,
                "inputs": ["<bottomup-1, filter node>power"],
                "outputs": ["<topdown>avg-power"],
                "params": {"op": "mean"}
            }
        }
    }

Time quantities accept ``*_ms``, ``*_s`` or ``*_ns`` suffixes.  The
small configuration block above instantiates one operator whose pattern
unit may expand to thousands of concrete units — the scaling property
Section III-C is after.

Validation is diagnostic-based: :func:`collect_operator_diagnostics`
walks one operator block and reports *every* problem it finds as
:class:`~repro.analysis.diagnostics.Diagnostic` records (unknown keys,
conflicting time spellings, bad values, malformed pattern expressions).
:func:`parse_operator_config` raises a :class:`ConfigError` carrying the
full list, so a block with three typos surfaces three findings in one
failure instead of one per deploy attempt.  The offline analyzer
(``wintermute-sim check``) reuses the same collector, which keeps the
static and runtime validation paths from drifting apart.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.diagnostics import Diagnostic, DiagnosticCollector
from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_MS, NS_PER_SEC
from repro.core.operator import MODES, UNIT_MODES, OperatorBase, OperatorConfig
from repro.core.pattern import PatternExpression
from repro.core.registry import create_operator

_TIME_FIELDS = ("interval", "window", "delay")
_BOOL_FIELDS = ("relaxed", "publish_outputs")
_TIME_SUFFIXES = (("ns", 1), ("ms", NS_PER_MS), ("s", NS_PER_SEC))

#: Every key an operator block may carry.
KNOWN_OPERATOR_KEYS = frozenset(
    {
        "mode",
        "unit_mode",
        "inputs",
        "outputs",
        "operator_outputs",
        "params",
        "max_workers",
        "unit_cadence",
        "batch",
        "fusion",
        "relaxed",
        "publish_outputs",
        "breaker_threshold",
        "breaker_cooldown",
        "breaker_max_cooldown",
    }
    | {f"{b}_{s}" for b in _TIME_FIELDS for s, _ in _TIME_SUFFIXES}
)

#: Every key a plugin configuration block may carry at the top level.
KNOWN_BLOCK_KEYS = frozenset({"plugin", "operators"})


def _collect_time(block: dict, base: str, out: DiagnosticCollector) -> None:
    """Validate one time field's spellings and value."""
    found = [f"{base}_{s}" for s, _ in _TIME_SUFFIXES if f"{base}_{s}" in block]
    if len(found) > 1:
        out.at(found[1]).error(
            "W004", f"conflicting time spellings for {base!r}: {found}"
        )
        return
    if not found:
        return
    key = found[0]
    value = block[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value < 0:
        out.at(key).error("W005", f"{key} must be a non-negative number")


def _read_time(block: dict, base: str, default_ns: int) -> int:
    """Read a validated time field accepting _ns/_ms/_s spellings."""
    for suffix, mult in _TIME_SUFFIXES:
        key = f"{base}_{suffix}"
        if key in block:
            return int(block[key] * mult)
    return default_ns


def collect_operator_diagnostics(
    name: str, block: dict, collector: Optional[DiagnosticCollector] = None
) -> List[Diagnostic]:
    """Statically validate one operator block, reporting every problem.

    Returns the diagnostics recorded for this block (also appended to
    ``collector``'s sink when one is passed in).  Error-severity
    findings mean :func:`parse_operator_config` would refuse the block.
    """
    out = collector if collector is not None else DiagnosticCollector()
    start = len(out.sink)
    if not isinstance(block, dict):
        out.error("W005", f"operator {name!r}: block must be a mapping")
        return out.sink[start:]
    unknown = set(block) - KNOWN_OPERATOR_KEYS
    for key in sorted(unknown):
        out.at(key).error(
            "W003", f"operator {name!r}: unknown config key {key!r}"
        )
    for base in _TIME_FIELDS:
        _collect_time(block, base, out)
    if "mode" in block and block["mode"] not in MODES:
        out.at("mode").error(
            "W005", f"mode must be one of {list(MODES)}, got {block['mode']!r}"
        )
    if "unit_mode" in block and block["unit_mode"] not in UNIT_MODES:
        out.at("unit_mode").error(
            "W005",
            f"unit_mode must be one of {list(UNIT_MODES)}, "
            f"got {block['unit_mode']!r}",
        )
    for key in ("max_workers", "unit_cadence", "breaker_cooldown", "breaker_max_cooldown"):
        value = block.get(key)
        if value is not None and (
            isinstance(value, bool) or not isinstance(value, int) or value < 1
        ):
            out.at(key).error("W005", f"{key} must be an integer >= 1")
    threshold = block.get("breaker_threshold")
    if threshold is not None and (
        isinstance(threshold, bool)
        or not isinstance(threshold, int)
        or threshold < 0
    ):
        out.at("breaker_threshold").error(
            "W005", "breaker_threshold must be an integer >= 0"
        )
    for key in _BOOL_FIELDS:
        if key in block and not isinstance(block[key], bool):
            out.at(key).error("W005", f"{key} must be a bool")
    for key in ("batch", "fusion"):
        if key in block and not (
            isinstance(block[key], bool) or block[key] == "auto"
        ):
            out.at(key).error(
                "W005",
                f"{key} must be true, false or 'auto', got {block[key]!r}",
            )
    for key in ("inputs", "outputs", "operator_outputs"):
        if key not in block:
            continue
        value = block[key]
        if not isinstance(value, list) or not all(
            isinstance(v, str) for v in value
        ):
            out.at(key).error("W005", f"{key} must be a list of strings")
            continue
        if key == "operator_outputs":
            continue  # bare sensor names, not pattern expressions
        for i, text in enumerate(value):
            try:
                expr = PatternExpression.parse(text)
            except ConfigError as exc:
                out.at(key, i).error("W006", str(exc))
                continue
            if key == "outputs" and i == 0 and expr.anchor == "unit":
                out.at(key, i).error(
                    "W007",
                    f"the unit-defining output expression must carry a "
                    f"level pattern, got bare {text!r}",
                )
    if "params" in block and not isinstance(block["params"], dict):
        out.at("params").error("W005", "params must be a dict")
    return out.sink[start:]


def parse_operator_config(name: str, block: dict) -> OperatorConfig:
    """Turn one operator's configuration block into an OperatorConfig.

    All problems in the block are validated up front; a raised
    :class:`ConfigError` carries the complete diagnostic list in its
    ``diagnostics`` attribute.
    """
    diagnostics = collect_operator_diagnostics(
        name, block, DiagnosticCollector(prefix=f"operators.{name}")
    )
    errors = [d for d in diagnostics if d.severity == "error"]
    if errors:
        raise ConfigError(
            f"operator {name!r}: {len(errors)} configuration error(s)\n"
            + "\n".join(f"  {d}" for d in errors),
            diagnostics=errors,
        )
    kwargs = dict(
        name=name,
        interval_ns=_read_time(block, "interval", NS_PER_SEC),
        window_ns=_read_time(block, "window", 0),
        delay_ns=_read_time(block, "delay", 0),
    )
    for key in (
        "mode",
        "unit_mode",
        "max_workers",
        "unit_cadence",
        "batch",
        "fusion",
        "breaker_threshold",
        "breaker_cooldown",
        "breaker_max_cooldown",
    ):
        if key in block:
            kwargs[key] = block[key]
    for key in _BOOL_FIELDS:
        if key in block:
            kwargs[key] = block[key]
    for key in ("inputs", "outputs", "operator_outputs"):
        if key in block:
            kwargs[key] = list(block[key])
    if "params" in block:
        kwargs["params"] = dict(block["params"])
    return OperatorConfig(**kwargs)


def collect_block_diagnostics(
    config: dict, collector: Optional[DiagnosticCollector] = None
) -> List[Diagnostic]:
    """Statically validate one whole plugin block (all operators).

    Structural checks only — plugin-name existence and sensor-tree
    resolution belong to :mod:`repro.analysis.config`, which layers them
    on top of this collector.
    """
    out = collector if collector is not None else DiagnosticCollector()
    start = len(out.sink)
    if not isinstance(config, dict):
        out.error("W005", "plugin configuration must be a mapping")
        return out.sink[start:]
    if "plugin" not in config:
        out.error("W001", "plugin configuration must name its 'plugin'")
    elif not isinstance(config["plugin"], str):
        out.at("plugin").error("W005", "'plugin' must be a string")
    for key in sorted(set(config) - KNOWN_BLOCK_KEYS):
        out.at(key).error(
            "W003", f"unknown top-level config key {key!r} "
            f"(expected {sorted(KNOWN_BLOCK_KEYS)})"
        )
    operators = config.get("operators")
    if not isinstance(operators, dict) or not operators:
        out.at("operators").error(
            "W002", "'operators' must be a non-empty mapping"
        )
        return out.sink[start:]
    for name, block in operators.items():
        collect_operator_diagnostics(name, block, out.at("operators", name))
    return out.sink[start:]


class Configurator:
    """Builds the operators of one plugin configuration block."""

    def __init__(self, config: dict, context: Optional[Dict[str, object]] = None):
        diagnostics = collect_block_diagnostics(config)
        errors = [d for d in diagnostics if d.severity == "error"]
        if errors:
            plugin = config.get("plugin") if isinstance(config, dict) else None
            raise ConfigError(
                f"plugin {plugin!r}: {len(errors)} configuration error(s)\n"
                + "\n".join(f"  {d}" for d in errors),
                diagnostics=errors,
            )
        self.plugin_name: str = config["plugin"]
        self._blocks: Dict[str, dict] = config["operators"]
        self._context = dict(context or {})

    def operator_configs(self) -> List[OperatorConfig]:
        """Parsed configurations, one per declared operator."""
        return [
            parse_operator_config(name, block)
            for name, block in self._blocks.items()
        ]

    def build(self) -> List[OperatorBase]:
        """Instantiate every operator declared in the block.

        Unit resolution happens later (``OperatorManager.load_plugin``),
        once the operator is bound to a host whose sensor tree is known.
        """
        return [
            create_operator(self.plugin_name, cfg, self._context)
            for cfg in self.operator_configs()
        ]
