"""The Configurator (Section V-C-2).

A configurator reads a plugin's configuration block and instantiates
operators accordingly, together with their units.  Configuration is a
plain dict (trivially loadable from JSON), shaped like::

    {
        "plugin": "aggregator",
        "operators": {
            "avgpower": {
                "interval_ms": 1000,
                "mode": "online",
                "unit_mode": "sequential",
                "window_ms": 5000,
                "inputs": ["<bottomup-1, filter node>power"],
                "outputs": ["<topdown>avg-power"],
                "params": {"op": "mean"}
            }
        }
    }

Time quantities accept ``*_ms``, ``*_s`` or ``*_ns`` suffixes.  The
small configuration block above instantiates one operator whose pattern
unit may expand to thousands of concrete units — the scaling property
Section III-C is after.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_MS, NS_PER_SEC
from repro.core.operator import OperatorBase, OperatorConfig
from repro.core.registry import create_operator

_TIME_FIELDS = ("interval", "window", "delay")
_BOOL_FIELDS = ("relaxed", "publish_outputs")


def _read_time(block: dict, base: str, default_ns: int) -> int:
    """Read a time field accepting _ns/_ms/_s suffixed spellings."""
    spellings = [
        (f"{base}_ns", 1),
        (f"{base}_ms", NS_PER_MS),
        (f"{base}_s", NS_PER_SEC),
    ]
    found = [(k, m) for k, m in spellings if k in block]
    if len(found) > 1:
        raise ConfigError(f"conflicting time spellings for {base!r}")
    if not found:
        return default_ns
    key, mult = found[0]
    value = block[key]
    if not isinstance(value, (int, float)) or value < 0:
        raise ConfigError(f"{key} must be a non-negative number")
    return int(value * mult)


def parse_operator_config(name: str, block: dict) -> OperatorConfig:
    """Turn one operator's configuration block into an OperatorConfig."""
    known = {
        "mode",
        "unit_mode",
        "inputs",
        "outputs",
        "operator_outputs",
        "params",
        "max_workers",
        "unit_cadence",
        "relaxed",
        "publish_outputs",
    } | {f"{b}_{s}" for b in _TIME_FIELDS for s in ("ns", "ms", "s")}
    unknown = set(block) - known
    if unknown:
        raise ConfigError(
            f"operator {name!r}: unknown config keys {sorted(unknown)}"
        )
    kwargs = dict(
        name=name,
        interval_ns=_read_time(block, "interval", NS_PER_SEC),
        window_ns=_read_time(block, "window", 0),
        delay_ns=_read_time(block, "delay", 0),
    )
    for key in ("mode", "unit_mode", "max_workers", "unit_cadence"):
        if key in block:
            kwargs[key] = block[key]
    for key in _BOOL_FIELDS:
        if key in block:
            if not isinstance(block[key], bool):
                raise ConfigError(f"operator {name!r}: {key} must be a bool")
            kwargs[key] = block[key]
    for key in ("inputs", "outputs", "operator_outputs"):
        if key in block:
            value = block[key]
            if not isinstance(value, list) or not all(
                isinstance(v, str) for v in value
            ):
                raise ConfigError(
                    f"operator {name!r}: {key} must be a list of strings"
                )
            kwargs[key] = list(value)
    if "params" in block:
        if not isinstance(block["params"], dict):
            raise ConfigError(f"operator {name!r}: params must be a dict")
        kwargs["params"] = dict(block["params"])
    return OperatorConfig(**kwargs)


class Configurator:
    """Builds the operators of one plugin configuration block."""

    def __init__(self, config: dict, context: Optional[Dict[str, object]] = None):
        if "plugin" not in config:
            raise ConfigError("plugin configuration must name its 'plugin'")
        operators = config.get("operators")
        if not isinstance(operators, dict) or not operators:
            raise ConfigError(
                f"plugin {config['plugin']!r}: 'operators' must be a "
                f"non-empty mapping"
            )
        self.plugin_name: str = config["plugin"]
        self._blocks: Dict[str, dict] = operators
        self._context = dict(context or {})

    def operator_configs(self) -> List[OperatorConfig]:
        """Parsed configurations, one per declared operator."""
        return [
            parse_operator_config(name, block)
            for name, block in self._blocks.items()
        ]

    def build(self) -> List[OperatorBase]:
        """Instantiate every operator declared in the block.

        Unit resolution happens later (``OperatorManager.load_plugin``),
        once the operator is bound to a host whose sensor tree is known.
        """
        return [
            create_operator(self.plugin_name, cfg, self._context)
            for cfg in self.operator_configs()
        ]
