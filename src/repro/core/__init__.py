"""Wintermute: the paper's core contribution.

The framework follows Figure 4 of the paper:

- :mod:`repro.core.tree` and :mod:`repro.core.pattern` implement the
  *Unit System* of Section III: the hierarchical sensor tree plus the
  ``<topdown+k>`` / ``<bottomup-k, filter ...>`` pattern expressions.
- :mod:`repro.core.units` resolves pattern units into concrete units —
  the three-step generation of Section V-C-2.
- :mod:`repro.core.navigator` is the Sensor Navigator plugins use to
  explore the sensor space.
- :mod:`repro.core.queryengine` is the Query Engine: cache-first sensor
  queries in O(1) relative or O(log N) absolute mode, with storage
  fallback on Collect Agents.
- :mod:`repro.core.operator` defines the operator interface (online /
  on-demand modes, sequential / parallel unit management, operator-level
  outputs, job operators).
- :mod:`repro.core.configurator` + :mod:`repro.core.registry` turn
  configuration blocks into operator instances.
- :mod:`repro.core.manager` is the Operator Manager: plugin lifecycle,
  scheduling, REST control.
- :mod:`repro.core.pipeline` wires multi-host analysis pipelines.
"""

from repro.core.tree import SensorTree, TreeNode
from repro.core.pattern import PatternExpression
from repro.core.units import Unit, UnitResolver
from repro.core.navigator import SensorNavigator
from repro.core.queryengine import QueryEngine
from repro.core.operator import (
    OperatorBase,
    OperatorConfig,
    JobOperatorBase,
    UnitResult,
)
from repro.core.configurator import Configurator
from repro.core.registry import (
    register_operator_plugin,
    operator_plugin,
    available_plugins,
)
from repro.core.manager import OperatorManager
from repro.core.pipeline import Pipeline, PipelineStage

__all__ = [
    "SensorTree",
    "TreeNode",
    "PatternExpression",
    "Unit",
    "UnitResolver",
    "SensorNavigator",
    "QueryEngine",
    "OperatorBase",
    "OperatorConfig",
    "JobOperatorBase",
    "UnitResult",
    "Configurator",
    "register_operator_plugin",
    "operator_plugin",
    "available_plugins",
    "OperatorManager",
    "Pipeline",
    "PipelineStage",
]
