"""Operator interface (Sections IV and V-C).

Operators are the computational entities performing ODA tasks.  Each
operator owns a set of units; when computation is invoked it iterates
through them, queries the input sensors through the Query Engine,
processes the readings, and stores results in the output sensors.

Configuration knobs follow the paper's workflow options:

- **mode**: ``online`` operators are invoked at regular intervals and
  produce time-series-like output; ``ondemand`` operators compute only
  when triggered through the REST API, returning (not storing) results.
- **unit management**: ``sequential`` units share one model and are
  processed in order (race-free); ``parallel`` units each get their own
  model instance and may be computed by a worker pool.
- **delay**: online operators can defer their first invocation, useful
  for pipeline stages that must wait for upstream data.
- **operator-level outputs**: aggregate sensors computed across all
  unit results (e.g. the average error of a model over its units).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigError, PluginError, QueryError
from repro.common.timeutil import NS_PER_SEC
from repro.dcdb.sensor import Sensor
from repro.core.breaker import CLOSED, OPEN, UnitBreaker, default_snapshot
from repro.core.queryengine import BatchWindow, QueryEngine
from repro.core.tree import SensorTree
from repro.core.units import Unit, UnitResolver
from repro.sanitizer import hooks
from repro.telemetry import Histogram, MetricRegistry

MODES = ("online", "ondemand")
UNIT_MODES = ("sequential", "parallel")
BATCH_MODES = (True, False, "auto")
FUSION_MODES = (True, False, "auto")


@dataclass
class OperatorConfig:
    """Declarative configuration of one operator.

    Attributes:
        name: operator instance name, unique within its manager.
        interval_ns: computation interval for online operators.
        mode: ``online`` or ``ondemand``.
        unit_mode: ``sequential`` (shared model) or ``parallel``
            (per-unit models, optional worker pool).
        window_ns: length of the input window operators query at each
            computation (0 = most recent value only).
        delay_ns: initial delay before the first online computation.
        relaxed: tolerate unbuildable units during resolution.
        publish_outputs: publish output readings over MQTT.
        max_workers: worker threads for parallel unit mode (1 = inline).
        unit_cadence: compute each unit only every Nth pass, staggered
            by unit index — spreads the load of operators with very
            large unit sets across intervals (1 = every pass).
        batch: ``"auto"`` (default) uses the vectorized
            :meth:`OperatorBase.compute_batch` path when the plugin
            declares ``supports_batch``; ``True`` forces the batch path
            even through the default per-unit fallback; ``False`` pins
            the scalar path.  The runtime sanitizer always computes
            scalar so its per-unit hooks keep firing.
        fusion: ``"auto"`` (default) lets the manager's fusion planner
            group this operator with adjacent pipeline stages into one
            fused pass when eligible; ``True`` additionally forces
            membership through the per-unit fallback paths (like
            ``batch: true``) and admits job operators as terminal
            consumers; ``False`` keeps the operator on the staged path.
        breaker_threshold: consecutive failures after which a unit is
            quarantined (skipped) by its circuit breaker; 0 (default)
            disables automatic tripping, leaving only manual REST
            control.
        breaker_cooldown: passes an open breaker waits before letting a
            probe computation through.
        breaker_max_cooldown: ceiling of the probe backoff doubling.
        inputs / outputs: pattern expressions of the operator's units.
        operator_outputs: names of operator-level aggregate outputs.
        params: plugin-specific parameters.
    """

    name: str
    interval_ns: int = NS_PER_SEC
    mode: str = "online"
    unit_mode: str = "sequential"
    window_ns: int = 0
    delay_ns: int = 0
    relaxed: bool = False
    publish_outputs: bool = True
    max_workers: int = 1
    unit_cadence: int = 1
    batch: object = "auto"
    fusion: object = "auto"
    breaker_threshold: int = 0
    breaker_cooldown: int = 4
    breaker_max_cooldown: int = 64
    inputs: List[str] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)
    operator_outputs: List[str] = field(default_factory=list)
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigError(f"operator {self.name}: bad mode {self.mode!r}")
        if self.unit_mode not in UNIT_MODES:
            raise ConfigError(
                f"operator {self.name}: bad unit_mode {self.unit_mode!r}"
            )
        if self.interval_ns <= 0:
            raise ConfigError(
                f"operator {self.name}: interval must be positive"
            )
        if self.window_ns < 0 or self.delay_ns < 0:
            raise ConfigError(
                f"operator {self.name}: window/delay must be non-negative"
            )
        if self.max_workers < 1:
            raise ConfigError(f"operator {self.name}: max_workers must be >= 1")
        if self.unit_cadence < 1:
            raise ConfigError(
                f"operator {self.name}: unit_cadence must be >= 1"
            )
        if self.batch not in BATCH_MODES:
            raise ConfigError(
                f"operator {self.name}: batch must be true, false or "
                f"'auto', not {self.batch!r}"
            )
        if self.fusion not in FUSION_MODES:
            raise ConfigError(
                f"operator {self.name}: fusion must be true, false or "
                f"'auto', not {self.fusion!r}"
            )
        if self.breaker_threshold < 0:
            raise ConfigError(
                f"operator {self.name}: breaker_threshold must be >= 0"
            )
        if self.breaker_cooldown < 1:
            raise ConfigError(
                f"operator {self.name}: breaker_cooldown must be >= 1"
            )
        # The ceiling can never undercut the base cooldown.
        self.breaker_max_cooldown = max(
            self.breaker_max_cooldown, self.breaker_cooldown
        )


class UnitResult(NamedTuple):
    """Output of one unit computation: output-name -> value."""

    unit: Unit
    values: Dict[str, float]


def _unit_inputs(unit: Unit) -> List[str]:
    """Default topic extractor for :meth:`OperatorBase.batch_window`."""
    return unit.inputs


class OperatorBase:
    """Base class for all Wintermute operator plugins.

    Subclasses implement :meth:`compute_unit` (and optionally
    :meth:`make_model` and :meth:`compute_operator_outputs`).  The base
    class handles unit resolution, model placement (shared vs per-unit),
    scheduling hooks, result storage and bookkeeping.

    Plugins with a vectorized :meth:`compute_batch` set the class
    attribute ``supports_batch = True``; the ``batch`` config knob then
    routes whole passes through one kernel over a
    :class:`~repro.core.queryengine.BatchWindow` instead of U per-unit
    Python calls.
    """

    #: Whether the plugin ships a vectorized :meth:`compute_batch`.
    supports_batch = False

    #: Whether :meth:`compute_batch` treats its :class:`BatchWindow` as
    #: read-only.  Fused pipeline stages (``core/fusion.py``) serve
    #: windows as zero-copy views over live fused-channel matrices to
    #: ``fusion_safe`` consumers; plugins that mutate window arrays in
    #: place must leave this ``False`` to receive private copies.
    fusion_safe = False

    @classmethod
    def flow_transforms(cls, params: dict) -> Dict[str, object]:
        """Declarative output-unit metadata for the static dataflow
        analyzer (``wintermute-sim check --flow``).

        Returns a mapping from output-sensor-name glob (``fnmatch``
        style, ``"*"`` for all) to a *transform* describing how the
        output's physical unit derives from the unit inputs:

        - ``"preserve"`` — same unit as the (pooled) inputs; pooling
          inputs of different physical dimensions is a configuration
          error the analyzer reports (rule F006).
        - ``"per-second"`` — input unit divided by time (``delta``/
          ``rate`` style computations: J becomes W, B becomes B/s).
        - ``"dimensionless"`` — ratios, labels, booleans, counts.
        - ``("input", <sensor-name>)`` — the unit of the named input
          sensor (e.g. a regression target), with no pooling check.

        The default declares nothing: third-party plugins degrade to
        "unknown" output units gracefully (the analyzer reports rule
        F007 as info and skips downstream unit checks).  Implementations
        must stay pure — they are consulted with the raw ``params``
        block, before (and without) operator instantiation.
        """
        return {}

    def __init__(self, config: OperatorConfig) -> None:
        self.config = config
        self.units: List[Unit] = []
        self.host = None
        self.engine: Optional[QueryEngine] = None
        self.enabled = False
        self._shared_model = None
        self._unit_models: Dict[str, object] = {}
        self._operator_output_sensors: List[Sensor] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self.last_errors: List[str] = []
        # Per-unit circuit breakers, allocated lazily on first failure
        # (or manual trip).  The lock is a sanitizer seam: parallel unit
        # mode records failures from pool worker threads.
        self._breakers: Dict[str, UnitBreaker] = {}
        self._breaker_lock = hooks.make_lock("OperatorBase.breaker")
        # Memoized batch-query layout: (key, topics, slices) from the
        # last batch_window call, keyed on the exact unit identities.
        self._batch_layout: Optional[tuple] = None
        # Memoized one-row-per-unit index (vector-kernel alignment),
        # keyed on the slices object batch_window keeps stable.
        self._row_layout: Optional[tuple] = None
        # Unbound operators instrument against a private registry; bind()
        # migrates the accrued values into the host's registry so every
        # operator shows up under the host's GET /metrics.
        self._telemetry = MetricRegistry()
        self._init_metrics(self._telemetry)

    def _init_metrics(self, registry: MetricRegistry) -> None:
        labels = {"operator": self.config.name}
        self._m_computes = registry.counter("operator_computes_total", **labels)
        self._m_errors = registry.counter("operator_errors_total", **labels)
        self._m_busy = registry.counter("operator_busy_ns_total", **labels)
        self._m_unit_results = registry.counter(
            "operator_unit_results_total", **labels
        )
        self._m_latency = registry.histogram(
            "operator_compute_latency_ns", **labels
        )
        self._m_breaker_trips = registry.counter(
            "breaker_trips_total", **labels
        )
        self._m_breaker_recoveries = registry.counter(
            "breaker_recoveries_total", **labels
        )
        registry.gauge(
            "operator_quarantined_units",
            fn=lambda: len(self.quarantined_units()),
            **labels,
        )

    # ------------------------------------------------------------------
    # Telemetry-backed counters (kept as attributes for compatibility)
    # ------------------------------------------------------------------

    @property
    def compute_count(self) -> int:
        """Completed computation passes."""
        return self._m_computes.value

    @property
    def error_count(self) -> int:
        """Failed unit computations (the operator kept running)."""
        return self._m_errors.value

    @property
    def busy_ns(self) -> int:
        """Cumulative wall-clock nanoseconds spent in compute passes."""
        return self._m_busy.value

    @property
    def unit_results_count(self) -> int:
        """Total unit results produced (unit throughput numerator)."""
        return self._m_unit_results.value

    @property
    def compute_latency(self) -> Histogram:
        """Latency histogram of full compute passes (telemetry view)."""
        return self._m_latency

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        """The operator instance name."""
        return self.config.name

    def bind(self, host, engine: QueryEngine) -> None:
        """Attach the operator to its hosting component.

        Operator metrics migrate into the host's metric registry (when
        it has one), carrying over anything accrued before binding.
        """
        self.host = host
        self.engine = engine
        registry = getattr(host, "telemetry", None)
        if registry is not None and registry is not self._telemetry:
            registry.absorb(self._telemetry)
            self._telemetry = registry
            self._init_metrics(registry)

    def make_resolver(self) -> UnitResolver:
        """The resolver for this operator's pattern unit."""
        return UnitResolver(
            inputs=self.config.inputs,
            outputs=self.config.outputs,
            relaxed=self.config.relaxed,
            publish_outputs=self.config.publish_outputs,
        )

    def init_units(self, tree: SensorTree) -> None:
        """Resolve the pattern unit against ``tree`` (Section V-C-2)."""
        self.set_units(self.make_resolver().resolve(tree))

    def set_units(self, units: Sequence[Unit]) -> None:
        """Install pre-built units (used by tests and job operators)."""
        self.units = list(units)
        self._unit_models.clear()
        self._shared_model = None
        self._init_operator_outputs()

    def _init_operator_outputs(self) -> None:
        self._operator_output_sensors = [
            Sensor(
                topic=f"/analytics/{self.name}/{out_name}",
                publish=self.config.publish_outputs,
                is_operator_output=True,
            )
            for out_name in self.config.operator_outputs
        ]

    def start(self) -> None:
        """Enable computation (the manager schedules the task).

        Parallel operators acquire their worker pool here: one
        persistent :class:`ThreadPoolExecutor` owned for the operator's
        whole enabled lifetime, not one per pass — the M4 ablation showed
        per-pass pool construction costing more than the work it ran.
        """
        self.enabled = True
        if self._uses_pool() and self._pool is None:
            self._pool = self._make_pool()

    def stop(self) -> None:
        """Disable computation; the task stays registered but idle."""
        self.enabled = False
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _uses_pool(self) -> bool:
        return self.config.unit_mode == "parallel" and self.config.max_workers > 1

    def _make_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(
            self.config.max_workers,
            thread_name_prefix=f"op-{self.name}",
        )

    # ------------------------------------------------------------------
    # Models
    # ------------------------------------------------------------------

    def make_model(self):
        """Create one analysis model instance (None for stateless ops)."""
        return None

    def model_for(self, unit: Unit):
        """The model bound to ``unit`` under the configured unit mode.

        Sequential operators share a single model across units;
        parallel operators keep one model per unit (Section IV-c).
        """
        if self.config.unit_mode == "sequential":
            if self._shared_model is None:
                self._shared_model = self.make_model()
            model = self._shared_model
        else:
            model = self._unit_models.get(unit.name)
            if model is None:
                model = self._unit_models[unit.name] = self.make_model()
        san = hooks.CURRENT
        if san is not None:
            san.on_model_access(self, unit, model)
        return model

    # ------------------------------------------------------------------
    # Computation
    # ------------------------------------------------------------------

    def compute_unit(self, unit: Unit, ts: int) -> Dict[str, float]:
        """Analyse one unit at time ``ts``; map output names to values.

        Output names must match the short names of the unit's output
        sensors.  Returning an empty dict stores nothing for the unit
        (useful while a model is still training).
        """
        raise NotImplementedError

    def compute(self, ts: int) -> List[UnitResult]:
        """One full computation pass over all units (online path)."""
        if not self.enabled:
            return []
        san = hooks.CURRENT
        if san is not None:
            san.begin_pass(self)
        t0 = time.perf_counter_ns()
        results = self._compute_results(ts)
        self._record_unit_successes(results)
        self._store_results(ts, results)
        self._store_operator_outputs(ts, results)
        elapsed = time.perf_counter_ns() - t0
        self._m_computes.inc()
        self._m_busy.inc(elapsed)
        self._m_latency.observe(elapsed)
        self._m_unit_results.inc(len(results))
        if san is not None:
            san.end_pass(self)
        return results

    def compute_fused(self, ts: int) -> List[UnitResult]:
        """One member pass of a fused pipeline group.

        Identical to :meth:`compute` up to (and including) breaker
        bookkeeping and telemetry, but performs **no** result storage:
        the fused group driver threads intermediate results straight
        into the next stage's window and only routes the final stage
        through :meth:`_store_results`/:meth:`_store_operator_outputs`.
        Never runs with the sanitizer active — the group driver falls
        back to the staged :meth:`compute` path first.
        """
        if not self.enabled:
            return []
        t0 = time.perf_counter_ns()
        results = self._compute_results(ts)
        self._record_unit_successes(results)
        elapsed = time.perf_counter_ns() - t0
        self._m_computes.inc()
        self._m_busy.inc(elapsed)
        self._m_latency.observe(elapsed)
        self._m_unit_results.inc(len(results))
        return results

    def compute_fused_vector(self, ts: int):
        """One fused *intermediate* pass, vectorized when possible.

        Returns ``(vector, results)`` with exactly one of the two set:
        when the pass is plain — no cadence staggering, no breakers to
        account for, batching on — and the plugin's
        :meth:`compute_batch_vector` kernel accepts it, ``vector`` is
        the float64 output column aligned with ``self.units`` and
        ``results`` is None; otherwise ``vector`` is None and
        ``results`` is the ordinary :meth:`compute_fused` list.  The
        fused group driver threads the vector straight into the next
        stage's window matrix, skipping per-unit result packaging.
        """
        if not self.enabled:
            return None, []
        vec = None
        if (
            self.config.unit_cadence <= 1
            and not self._breakers  # unguarded: emptiness fast-path; any breaker routes through the accounted list path
            and self.batch_enabled()
        ):
            t0 = time.perf_counter_ns()
            try:
                vec = self.compute_batch_vector(self.units, ts)
            except (QueryError, PluginError, ValueError, KeyError):
                # The list path below re-raises and accounts for it
                # exactly as a staged pass would.
                vec = None
        if vec is None:
            return None, self.compute_fused(ts)
        elapsed = time.perf_counter_ns() - t0
        self._m_computes.inc()
        self._m_busy.inc(elapsed)
        self._m_latency.observe(elapsed)
        self._m_unit_results.inc(len(self.units))
        return vec, None

    def compute_batch_vector(self, units: Sequence[Unit], ts: int):
        """Optional vectorized kernel for fused intermediate stages.

        When the pass is uniform — every unit exactly one input row
        with equal non-empty window counts, one output per unit —
        return the float64 output vector aligned with ``units``.
        Return None to decline; the driver then runs the ordinary
        :meth:`compute_batch` list path.  Implementations must be
        bit-for-bit identical to the values :meth:`compute_batch`
        would produce for the same pass, and must not store anything.
        """
        return None

    def _single_row_layout(self, slices: List[range]):
        """Unit→row index when every unit maps to exactly one window
        row (the vector kernels' alignment precondition), else None.
        Memoized on the slices object, which :meth:`batch_window`'s
        layout memo keeps identity-stable across steady-state passes."""
        memo = self._row_layout
        if memo is not None and memo[0] is slices:
            return memo[1]
        rows = None
        if all(len(s) == 1 for s in slices):
            rows = np.fromiter(
                (s[0] for s in slices), dtype=np.intp, count=len(slices)
            )
        self._row_layout = (slices, rows)
        return rows

    def _due_units(self) -> List[Unit]:
        """Units owed a computation this pass (cadence staggering,
        then circuit-breaker quarantine filtering)."""
        cadence = self.config.unit_cadence
        if cadence > 1:
            phase = self.compute_count % cadence
            units = [
                u for i, u in enumerate(self.units) if i % cadence == phase
            ]
        else:
            units = self.units
        return self._breaker_filter(units)

    # ------------------------------------------------------------------
    # Circuit breaker
    # ------------------------------------------------------------------

    def breaker_enabled(self) -> bool:
        """Whether failures trip unit breakers automatically."""
        return self.config.breaker_threshold > 0

    def _breaker_for(self, unit_name: str) -> UnitBreaker:
        """Get-or-create a unit's breaker (callers hold _breaker_lock)."""
        breaker = self._breakers.get(unit_name)
        if breaker is None:
            breaker = self._breakers[unit_name] = UnitBreaker(
                self.config.breaker_threshold,
                self.config.breaker_cooldown,
                self.config.breaker_max_cooldown,
            )
        return breaker

    def _breaker_filter(self, units: List[Unit]) -> List[Unit]:
        """Drop quarantined units from a pass.

        Open breakers age toward their next probe here (skipped passes
        are the quarantine clock).  With no breakers allocated and
        automatic tripping disabled this is a no-op returning ``units``
        unchanged.
        """
        if not self._breakers:  # unguarded: emptiness fast-path; a stale read only delays quarantine by one pass
            return units
        allowed = []
        with self._breaker_lock:
            for unit in units:
                breaker = self._breakers.get(unit.name)
                if breaker is None or breaker.allow():
                    allowed.append(unit)
        return allowed

    def _record_unit_successes(self, results: List[UnitResult]) -> None:
        """Close/clear breakers of units that produced results."""
        if not self._breakers:  # unguarded: emptiness fast-path; a missed close is retried next pass
            return
        with self._breaker_lock:
            for unit, _values in results:
                breaker = self._breakers.get(unit.name)
                if breaker is None:
                    continue
                recovered = breaker.state != CLOSED
                breaker.record_success()
                if recovered:
                    self._m_breaker_recoveries.inc()

    def quarantined_units(self) -> List[str]:
        """Names of units currently skipped by an open breaker."""
        with self._breaker_lock:
            return sorted(
                name
                for name, b in self._breakers.items()
                if b.state == OPEN
            )

    def breaker_state(self, unit_name: str) -> dict:
        """REST view of one unit's breaker."""
        self._require_unit(unit_name)
        with self._breaker_lock:
            breaker = self._breakers.get(unit_name)
            snap = (
                breaker.snapshot()
                if breaker is not None
                else default_snapshot(self.config.breaker_threshold)
            )
        return {"operator": self.name, "unit": unit_name, **snap}

    def set_breaker(self, unit_name: str, action: str) -> dict:
        """Manual breaker control (REST ``PUT ...?action=trip|reset``)."""
        self._require_unit(unit_name)
        if action not in ("trip", "reset"):
            raise ConfigError(
                f"breaker action must be 'trip' or 'reset', got {action!r}"
            )
        with self._breaker_lock:
            breaker = self._breaker_for(unit_name)
            if action == "trip":
                if breaker.state != OPEN:
                    breaker.trip()
                    self._m_breaker_trips.inc()
            else:
                breaker.reset()
            snap = breaker.snapshot()
        return {"operator": self.name, "unit": unit_name, **snap}

    def _require_unit(self, unit_name: str) -> None:
        if any(u.name == unit_name for u in self.units):
            return
        if unit_name in self._breakers:  # unguarded: racy probe; REST readers tolerate staleness
            return  # job units may have rotated out; state still readable
        raise PluginError(
            f"operator {self.name!r} has no unit {unit_name!r}"
        )

    def batch_enabled(self) -> bool:
        """Whether this pass runs through :meth:`compute_batch`.

        The sanitizer vetoes batching unconditionally: its per-unit
        compute watcher and per-view invariant checks only exist on the
        scalar path.
        """
        if hooks.CURRENT is not None:
            return False
        batch = self.config.batch
        if batch is True:
            return True
        return bool(batch == "auto" and self.supports_batch)

    def _compute_results(self, ts: int) -> List[UnitResult]:
        """Produce the pass's unit results.

        The default iterates units under the configured unit mode (or
        hands the whole due set to :meth:`compute_batch`); cross-unit
        operators (e.g. clustering, which fits one model over all units'
        features) may override it wholesale.
        """
        due_units = self._due_units()
        if self.batch_enabled():
            return self._compute_results_batch(due_units, ts)
        results: List[UnitResult] = []
        if self._uses_pool() and len(due_units) > 1:
            pool = self._pool
            if pool is None:
                # Enabled without start() (tests drive compute directly).
                pool = self._pool = self._make_pool()
            n = len(due_units)
            workers = min(self.config.max_workers, n)
            chunk = (n + workers - 1) // workers
            futures = [
                pool.submit(self._compute_chunk, due_units[lo:lo + chunk], ts)
                for lo in range(0, n, chunk)
            ]
            for future in futures:
                results.extend(future.result())
        else:
            for unit in due_units:
                result = self._compute_one(unit, ts)
                if result is not None:
                    results.append(result)
        return results

    def _compute_chunk(self, units: Sequence[Unit], ts: int) -> List[UnitResult]:
        """One worker's contiguous share of a parallel pass.

        Chunking keeps the future count at ``max_workers`` instead of U,
        and gathering chunks in submission order preserves unit order in
        the result list exactly like the sequential path.
        """
        out = []
        for unit in units:
            result = self._compute_one(unit, ts)
            if result is not None:
                out.append(result)
        return out

    def _compute_results_batch(
        self, due_units: List[Unit], ts: int
    ) -> List[UnitResult]:
        """Batched pass: one :meth:`compute_batch` call for all units.

        A batch-wide failure degrades to the per-unit scalar loop for
        the pass, so a kernel bug costs performance, never output.
        """
        try:
            return self.compute_batch(due_units, ts)
        except (QueryError, PluginError, ValueError, KeyError) as exc:
            self._note_error("<batch>", exc)
            results = []
            for unit in due_units:
                result = self._compute_one(unit, ts)
                if result is not None:
                    results.append(result)
            return results

    def compute_batch(self, units: Sequence[Unit], ts: int) -> List[UnitResult]:
        """Compute every unit of a pass in one call.

        Vectorizing plugins override this (and set ``supports_batch``)
        with a kernel over :meth:`batch_window`'s stacked matrix.  The
        default preserves exact scalar semantics by delegating to
        :meth:`compute_unit` per unit, including its error accounting.
        """
        results = []
        for unit in units:
            result = self._compute_one(unit, ts)
            if result is not None:
                results.append(result)
        return results

    def batch_window(
        self, units: Sequence[Unit], topics_of=None
    ) -> Tuple[BatchWindow, List[range]]:
        """Fetch all the units' input windows in one batched query.

        Returns ``(window, slices)`` where ``slices[j]`` is the
        ``range(lo, hi)`` of rows in ``window`` holding unit ``j``'s
        inputs, in the unit's input order.  The underlying query plan is
        cached per operator and invalidated by sensor-space generation
        moves, so steady-state passes resolve zero topic names.
        """
        if topics_of is None:
            topics_of = _unit_inputs
        # The layout (flattened topics + per-unit row slices) depends
        # only on the unit identities; steady-state passes reuse it.
        key = (topics_of, tuple(map(id, units)))
        cached = self._batch_layout
        if cached is not None and cached[0] == key:
            topics, slices = cached[1], cached[2]
        else:
            topics = []
            slices: List[range] = []
            for unit in units:
                unit_topics = topics_of(unit)
                lo = len(topics)
                topics.extend(unit_topics)
                slices.append(range(lo, len(topics)))
            topics = tuple(topics)
            self._batch_layout = (key, topics, slices)
        window = self.engine.query_relative_batch(
            topics, self.config.window_ns, key=f"operator:{self.name}"
        )
        return window, slices

    def _compute_one(self, unit: Unit, ts: int) -> Optional[UnitResult]:
        san = hooks.CURRENT
        try:
            if san is None:
                values = self.compute_unit(unit, ts)
            else:
                values = san.watch_unit_compute(
                    self, unit, lambda: self.compute_unit(unit, ts)
                )
        except (QueryError, PluginError, ValueError, KeyError) as exc:
            # A failing unit must not take down the operator: count it
            # and move on, like the production framework's error path.
            self._record_unit_error(unit, exc)
            return None
        if not values:
            return None
        return UnitResult(unit, values)

    def _note_error(self, label: str, exc: Exception) -> None:
        """Count one error into the bounded log.

        ``last_errors`` is rebound, not mutated in place (readers keep
        a stable snapshot), so concurrent notes from pool workers would
        lose entries without the lock.
        """
        self._m_errors.inc()
        with self._breaker_lock:
            self.last_errors = (self.last_errors + [f"{label}: {exc}"])[-16:]

    def _record_unit_error(self, unit: Unit, exc: Exception) -> None:
        """Count one failed unit without aborting the pass.

        Batch kernels call this for rows the scalar path would have
        errored on (e.g. all input sensors missing), keeping the two
        paths' error accounting identical.
        """
        self._note_error(unit.name, exc)
        if self.breaker_enabled() or self._breakers:  # unguarded: fast-path pre-check; the mutation below re-checks under the lock
            with self._breaker_lock:
                breaker = self._breaker_for(unit.name)
                trips_before = breaker.trips
                breaker.record_failure()
                if breaker.trips != trips_before:
                    self._m_breaker_trips.inc()

    def _store_results(self, ts: int, results: List[UnitResult]) -> None:
        if self.host is None:
            return
        if self.batch_enabled() and hasattr(self.host, "store_readings_batch"):
            self.store_results_batch(ts, results)
            return
        for unit, values in results:
            for sensor in unit.outputs:
                value = values.get(sensor.name)
                if value is not None:
                    self.host.store_reading(sensor, ts, float(value))

    def store_results_batch(self, ts: int, results: List[UnitResult]) -> None:
        """Hand a whole pass's readings to the host in one call.

        Preserves the scalar path's (unit, output) emission order, so
        cache contents and MQTT publish order are unchanged — only the
        per-reading call overhead is amortized.
        """
        readings = []
        for unit, values in results:
            for sensor in unit.outputs:
                value = values.get(sensor.name)
                if value is not None:
                    readings.append((sensor, float(value)))
        if readings:
            self.host.store_readings_batch(ts, readings)

    def _store_operator_outputs(self, ts: int, results: List[UnitResult]) -> None:
        if not self._operator_output_sensors or self.host is None:
            return
        aggregates = self.compute_operator_outputs(ts, results)
        for sensor in self._operator_output_sensors:
            value = aggregates.get(sensor.name)
            if value is not None:
                self.host.store_reading(sensor, ts, float(value))

    def compute_operator_outputs(
        self, ts: int, results: List[UnitResult]
    ) -> Dict[str, float]:
        """Aggregate across unit results for operator-level outputs.

        The default averages each output name over all units that
        produced it — e.g. the mean model error of Section V-C-2.
        Subclasses may override for other aggregates.
        """
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for _, values in results:
            for key, value in values.items():
                sums[key] = sums.get(key, 0.0) + value
                counts[key] = counts.get(key, 0) + 1
        return {k: sums[k] / counts[k] for k in sums}

    # ------------------------------------------------------------------
    # On-demand path
    # ------------------------------------------------------------------

    def trigger(self, unit_name: str, ts: int, tree: SensorTree) -> Dict[str, float]:
        """Compute one unit on demand and return (not store) the result.

        This is the REST-triggered path of Section IV-b: the output is
        propagated only as a response to the request.  Units already
        resolved are reused; otherwise the unit is built on the fly.
        """
        unit = next((u for u in self.units if u.name == unit_name), None)
        if unit is None:
            unit = self.make_resolver().resolve_for_name(tree, unit_name)
        return self.compute_unit(unit, ts)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Bookkeeping counters for the REST API and benchmarks."""
        return {
            "name": self.name,
            "units": len(self.units),
            "mode": self.config.mode,
            "unit_mode": self.config.unit_mode,
            "computes": self.compute_count,
            "errors": self.error_count,
            "busy_ns": self.busy_ns,
            "unit_results": self.unit_results_count,
            "quarantined": len(self.quarantined_units()),
            "mean_compute_ns": (
                self._m_latency.mean if self._m_latency.count else 0.0
            ),
        }


class JobOperatorBase(OperatorBase):
    """Operator whose units are jobs rather than tree nodes.

    At each computation interval the operator queries the set of running
    jobs and rebuilds one unit per job (Section VI-C: the persyst plugin
    "queries the set of running jobs ... and for each of them it
    instantiates a unit").  Subclasses provide ``job_output_names``.

    Args:
        config: standard operator config; ``inputs`` are resolved
            against each allocated node's subtree.
        job_source: object with ``running_jobs(ts)`` returning jobs with
            ``job_id`` and ``node_paths`` — the scheduler substrate.
    """

    def __init__(self, config: OperatorConfig, job_source=None) -> None:
        super().__init__(config)
        self.job_source = job_source
        self._tree: Optional[SensorTree] = None

    def job_output_names(self) -> List[str]:
        """Names of the per-job output sensors."""
        raise NotImplementedError

    def init_units(self, tree: SensorTree) -> None:
        """Job units are dynamic; stash the tree and start empty."""
        self._tree = tree
        self.set_units([])

    def refresh_units(self, ts: int) -> None:
        """Rebuild units from the jobs running at ``ts``.

        If a job fails to resolve, the sensor space is refreshed once
        for the pass and the job retried — job operators typically load
        before the upstream pipeline stages (or the monitoring itself)
        have produced the sensors their inputs name.
        """
        from repro.core.units import resolve_job_unit

        if self.job_source is None or self._tree is None:
            return
        refreshed = False
        units = []
        for job in self.job_source.running_jobs(ts):
            for attempt in (0, 1):
                try:
                    units.append(
                        resolve_job_unit(
                            self._tree,
                            job.job_id,
                            job.node_paths,
                            self.config.inputs,
                            self.job_output_names(),
                            publish_outputs=self.config.publish_outputs,
                            relaxed=self.config.relaxed,
                        )
                    )
                    break
                except Exception as exc:  # unresolvable job
                    if attempt == 0 and not refreshed and self.engine is not None:
                        self.engine.refresh_navigator()
                        self._tree = self.engine.navigator.tree
                        refreshed = True
                        continue
                    self._note_error(job.job_id, exc)
                    break
        # Preserve per-job models across refreshes in parallel mode.
        kept = {u.name for u in units}
        self._unit_models = {
            name: m for name, m in self._unit_models.items() if name in kept
        }
        self.units = units

    def compute(self, ts: int) -> List[UnitResult]:
        if self.enabled:
            self.refresh_units(ts)
        return super().compute(ts)

    def compute_fused(self, ts: int) -> List[UnitResult]:
        if self.enabled:
            self.refresh_units(ts)
        return super().compute_fused(ts)
