"""The Sensor Navigator (Section V-B).

The Query Engine exposes a navigator object that maintains the tree
representation of the sensor space, letting plugins discover which
sensors are available and where they stand in the hierarchy.  The
navigator wraps a :class:`~repro.core.tree.SensorTree` with the
exploration queries operators actually need: children/parent walks,
level queries, subtree sensor listings, and regex search.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional

from repro.common.errors import QueryError
from repro.core.tree import SensorTree, TreeNode


class SensorNavigator:
    """Hierarchy-aware view over the monitored sensor space."""

    def __init__(self, tree: Optional[SensorTree] = None) -> None:
        self._tree = tree if tree is not None else SensorTree()
        self._rebuilds = 0

    @classmethod
    def from_topics(cls, topics: Iterable[str]) -> "SensorNavigator":
        """Build a navigator directly from sensor topics.

        The tree is frozen once built: host sensor spaces change by
        :meth:`rebuild` (a fresh tree), never by in-place mutation —
        units resolved against the old tree hold references into it.
        """
        tree = SensorTree.from_topics(topics)
        tree.freeze()
        return cls(tree)

    @property
    def tree(self) -> SensorTree:
        """The underlying sensor tree (shared, not copied)."""
        return self._tree

    @property
    def generation(self) -> tuple:
        """Sensor-space generation: changes whenever the navigator is
        rebuilt *or* the current tree is mutated in place (hot-plug).

        Compiled query plans compare this value to decide staleness;
        anything cheaper (object identity of the tree) misses in-place
        mutations, anything coarser forces needless recompiles.
        """
        return (self._rebuilds, self._tree.generation)

    def rebuild(self, topics: Iterable[str]) -> None:
        """Replace the tree with one built from ``topics``.

        Hosts call this when their sensor space changes — e.g. when a
        pipeline stage starts producing new operator-output sensors.
        """
        tree = SensorTree.from_topics(topics)
        tree.freeze()
        self._tree = tree
        self._rebuilds += 1

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------

    def _node_or_raise(self, path: str) -> TreeNode:
        node = self._tree.node(path)
        if node is None:
            raise QueryError(f"no component {path!r} in the sensor tree")
        return node

    def has_sensor(self, topic: str) -> bool:
        """Whether a full sensor topic exists."""
        return self._tree.has_sensor(topic)

    def sensors_of(self, component: str) -> List[str]:
        """Topics of the sensors attached directly to ``component``."""
        return sorted(self._node_or_raise(component).sensors.values())

    def subtree_sensors(self, component: str) -> List[str]:
        """Topics of all sensors at or below ``component``."""
        node = self._node_or_raise(component)
        out: List[str] = []
        for n in node.iter_subtree():
            out.extend(n.sensors.values())
        return sorted(out)

    def children(self, component: str) -> List[str]:
        """Paths of the child components of ``component``."""
        return sorted(c.path for c in self._node_or_raise(component).children.values())

    def parent(self, component: str) -> Optional[str]:
        """Path of the parent component, or None at the top level."""
        node = self._node_or_raise(component)
        if node.parent is None or node.parent.level < 0:
            return None
        return node.parent.path

    def level_of(self, component: str) -> int:
        """Absolute tree level of a component (0 = top)."""
        return self._node_or_raise(component).level

    def components_at_level(self, level: int) -> List[str]:
        """Paths of every component at an absolute level."""
        return sorted(n.path for n in self._tree.nodes_at_level(level))

    @property
    def depth(self) -> int:
        """The tree's deepest component level."""
        return self._tree.max_level

    def search_sensors(self, pattern: str) -> List[str]:
        """All sensor topics whose full topic matches a regex."""
        try:
            rx = re.compile(pattern)
        except re.error as exc:
            raise QueryError(f"bad search pattern {pattern!r}: {exc}") from exc
        return sorted(
            t for t in self._tree.all_sensor_topics() if rx.search(t)
        )

    def common_ancestor(self, path_a: str, path_b: str) -> str:
        """Deepest component containing both paths (``/`` if disjoint)."""
        a = self._node_or_raise(path_a)
        b = self._node_or_raise(path_b)
        a_chain = [a] + list(a.ancestors())
        a_set = {id(n) for n in a_chain}
        node: Optional[TreeNode] = b
        while node is not None and node.level >= 0:
            if id(node) in a_set:
                return node.path
            node = node.parent
        return "/"
