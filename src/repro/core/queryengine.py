"""The Query Engine (Section V-B).

The Query Engine is the single component through which operator plugins
obtain sensor data, isolating them from *where* they are instantiated:
the same plugin code runs in a Pusher (local caches only) or a Collect
Agent (caches plus Storage Backend fallback).

Queries come in two modes matching the paper:

- :meth:`query_relative` — a nanosecond offset against each sensor's
  most recent reading; served from the cache in O(1) via index
  arithmetic on the ring buffer.
- :meth:`query_absolute` — absolute timestamp bounds; served via binary
  search in O(log N), falling back to the storage backend when the
  requested range extends past the cache's retention.

Both return :class:`~repro.dcdb.cache.CacheView` objects, so operators
receive zero-copy array windows regardless of the data's origin.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigError, QueryError
from repro.dcdb.cache import CacheView, SensorCache
from repro.dcdb.virtual import VirtualSensor, VirtualSensorRegistry
from repro.core.navigator import SensorNavigator
from repro.sanitizer import hooks
from repro.telemetry import MetricRegistry

#: Host callback returning the cache for a topic (or None).
CacheLookup = Callable[[str], Optional[SensorCache]]

#: Row kinds of a compiled plan (see :class:`QueryPlan`).
_ROW_CACHE = 0    # direct ring-buffer binding, O(1) tail copy per tick
_ROW_SCALAR = 1   # storage/virtual/interval-less cache: scalar query
_ROW_MISS = 2     # unresolvable at compile time: always empty


class BatchWindow:
    """Result of one batched relative query: U topics x W window slots.

    Rows are **right-aligned**: the newest reading of topic ``i`` sits in
    column ``W - 1`` and its ``counts[i]`` valid readings occupy the
    columns ``[W - counts[i], W)``.  Invalid slots hold NaN values and
    zero timestamps.  The arrays are freshly allocated per query, so a
    window is a snapshot in the same sense a :class:`CacheView` is.

    A row with ``counts[i] == 0`` means the scalar path
    (:meth:`QueryEngine.query_relative`) would have raised
    :class:`QueryError` for that topic at the same instant.
    """

    __slots__ = ("topics", "values", "timestamps", "counts", "width")

    def __init__(
        self,
        topics: Sequence[str],
        values: np.ndarray,
        timestamps: np.ndarray,
        counts: np.ndarray,
    ) -> None:
        self.topics = tuple(topics)
        self.values = values
        self.timestamps = timestamps
        self.counts = counts
        self.width = int(values.shape[1])

    def __len__(self) -> int:
        return len(self.topics)

    @property
    def mask(self) -> np.ndarray:
        """Boolean validity mask, True where a slot holds a reading."""
        return np.arange(self.width) >= (self.width - self.counts[:, None])

    def row_values(self, i: int) -> np.ndarray:
        """The valid value segment of row ``i``, oldest-first (a view)."""
        return self.values[i, self.width - int(self.counts[i]):]

    def row_timestamps(self, i: int) -> np.ndarray:
        """The valid timestamp segment of row ``i``, oldest-first."""
        return self.timestamps[i, self.width - int(self.counts[i]):]

    def last_values(self) -> np.ndarray:
        """Newest value per row (NaN where a row is empty)."""
        return self.values[:, -1]

    def newest_timestamps(self) -> np.ndarray:
        """Newest timestamp per row (0 where a row is empty)."""
        return self.timestamps[:, -1]


class QueryPlan:
    """A compiled batched query: topic -> data-source bindings.

    Built once per operator (at ``init_units``/tree-change time) and
    reused every tick until the sensor-space generation moves on.  A
    plan removes *all* per-tick name resolution: cache rows hold direct
    references to the ring buffers plus the precomputed window length
    (``offset // interval + 1``, the paper's O(1) relative arithmetic),
    so executing a plan performs zero dict lookups and zero re-parsing.

    Rows come in three kinds:

    - *cache*: an interval-hinted local cache; the tick path copies the
      ring tail straight into the result matrix.
    - *scalar*: virtual sensors, interval-less caches and topics only a
      storage backend can serve; executed through the scalar query path
      (correct, not fast).
    - *miss*: topics unresolvable when the plan was compiled.  They stay
      empty until a sensor-space change bumps the generation and forces
      a recompile — exactly the staleness the generation counter exists
      to bound.
    """

    __slots__ = (
        "topics", "window_ns", "width", "rows", "generation",
        "cache_rows", "scalar_rows", "miss_rows",
    )

    def __init__(
        self,
        topics: Tuple[str, ...],
        window_ns: int,
        width: int,
        rows: List[tuple],
        generation: tuple,
    ) -> None:
        self.topics = topics
        self.window_ns = window_ns
        self.width = width
        self.rows = rows
        self.generation = generation
        # Pre-split by kind so execution loops touch only the rows they
        # serve (the cache loop is the per-tick hot path and must not
        # branch over scalar/miss rows at 1000s of units).
        self.cache_rows: List[tuple] = []
        self.scalar_rows: List[tuple] = []
        self.miss_rows: List[int] = []
        for i, (kind, payload, count) in enumerate(rows):
            if kind == _ROW_CACHE:
                self.cache_rows.append((i, payload, count))
            elif kind == _ROW_SCALAR:
                self.scalar_rows.append((i, payload))
            else:
                self.miss_rows.append(i)

    @property
    def n_cache_rows(self) -> int:
        """Rows served by direct ring-buffer bindings."""
        return sum(1 for kind, _, _ in self.rows if kind == _ROW_CACHE)


class QueryEngine:
    """Cache-first sensor data access for operator plugins.

    One engine exists per hosting component (Pusher or Collect Agent) —
    the "singleton" of the paper is per-process; here it is per-host so
    multiple simulated hosts coexist in one interpreter.

    Args:
        host: any object exposing ``cache_for(topic)``, ``storage``
            (may be ``None``) and ``sensor_topics()`` — both DCDB host
            classes qualify.
        navigator: optional pre-built navigator; by default one is
            constructed from the host's current sensor space.
    """

    def __init__(self, host, navigator: Optional[SensorNavigator] = None) -> None:
        self._host = host
        self._navigator = navigator or SensorNavigator.from_topics(
            host.sensor_topics()
        )
        #: Operator-output topics announced before their producer has
        #: stored anything (see :meth:`declare_topics`).
        self._declared_topics: set = set()
        # Shares the host's metric registry when it has one (Pusher /
        # Collect Agent); standalone engines get a private registry so
        # instrumentation is unconditional.
        host_registry = getattr(host, "telemetry", None)
        self.telemetry: MetricRegistry = (
            host_registry if host_registry is not None else MetricRegistry()
        )
        self._m_hits = self.telemetry.counter("qe_cache_hits_total")
        self._m_fallbacks = self.telemetry.counter("qe_storage_fallbacks_total")
        self._m_misses = self.telemetry.counter("qe_misses_total")
        self._m_latency_rel = self.telemetry.histogram(
            "qe_query_latency_ns", mode="relative"
        )
        self._m_latency_abs = self.telemetry.histogram(
            "qe_query_latency_ns", mode="absolute"
        )
        self._m_latency_batch = self.telemetry.histogram(
            "qe_query_latency_ns", mode="batch"
        )
        self._m_plan_compiles = self.telemetry.counter("qe_plan_compiles_total")
        self._m_plan_hits = self.telemetry.counter("qe_plan_hits_total")
        self._m_plan_invalidations = self.telemetry.counter(
            "qe_plan_invalidations_total"
        )
        self._plans: Dict[object, QueryPlan] = {}
        self.virtual = VirtualSensorRegistry()
        self._virtual_in_flight: set = set()

    # ------------------------------------------------------------------
    # Telemetry-backed counters (kept as attributes for compatibility)
    # ------------------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        """Queries answered from a sensor cache."""
        return self._m_hits.value

    @property
    def storage_fallbacks(self) -> int:
        """Queries answered from the storage backend."""
        return self._m_fallbacks.value

    @property
    def misses(self) -> int:
        """Queries no data source could answer."""
        return self._m_misses.value

    # ------------------------------------------------------------------
    # Sensor space
    # ------------------------------------------------------------------

    @property
    def navigator(self) -> SensorNavigator:
        """The Sensor Navigator over the host's sensor space."""
        return self._navigator

    def refresh_navigator(self) -> None:
        """Rebuild the navigator from the host's current sensor space.

        Needed when new sensors appear after engine construction — e.g.
        upstream pipeline stages starting to publish derived metrics.
        Declared-but-not-yet-stored operator outputs stay in the tree so
        downstream pipeline stages keep resolving across rebuilds.
        """
        topics = list(self._host.sensor_topics())
        if self._declared_topics:
            known = set(topics)
            topics.extend(
                t for t in sorted(self._declared_topics) if t not in known
            )
        self._navigator.rebuild(topics)

    def declare_topics(self, topics) -> None:
        """Announce operator-output topics ahead of their first store.

        Pipeline stages resolve their units against the sensor tree at
        load time, before any upstream pass has lazily created the
        operator-output caches.  Declaring the upstream stage's output
        topics makes a downstream ``<bottomup>`` input expression match
        immediately, so whole pipelines load cold in one deployment
        build.  Rebuilds the navigator (bumping the plan generation)
        only when a genuinely new topic appears.
        """
        new = set(topics) - self._declared_topics
        if new:
            self._declared_topics |= new
            self.refresh_navigator()

    def topics(self) -> List[str]:
        """All topics currently queryable on this host (incl. virtual)."""
        return sorted(set(self._host.sensor_topics()) | set(self.virtual.topics()))

    # ------------------------------------------------------------------
    # Virtual sensors
    # ------------------------------------------------------------------

    def define_virtual(
        self, topic: str, expression: str, interval_ns: int
    ) -> VirtualSensor:
        """Register a query-time-evaluated virtual sensor.

        Virtual sensors may reference other virtual sensors; cycles are
        rejected at evaluation time.
        """
        return self.virtual.define(topic, expression, interval_ns)

    def _fetch_for_virtual(self, topic: str, start: int, end: int):
        view = self.query_absolute(topic, start, end)
        return view.timestamps(), view.values()

    def _eval_virtual(
        self, sensor: VirtualSensor, start_ts: int, end_ts: int
    ) -> CacheView:
        if sensor.topic in self._virtual_in_flight:
            raise ConfigError(
                f"virtual sensor cycle through {sensor.topic}"
            )
        self._virtual_in_flight.add(sensor.topic)
        try:
            ts, values = sensor.evaluate(
                self._fetch_for_virtual, start_ts, end_ts
            )
        finally:
            self._virtual_in_flight.discard(sensor.topic)
        return CacheView([(ts, values)])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def latest(self, topic: str) -> CacheView:
        """The most recent reading of ``topic``."""
        return self.query_relative(topic, 0)

    def query_relative(self, topic: str, offset_ns: int) -> CacheView:
        """Readings within ``offset_ns`` of the newest reading (O(1)).

        A zero offset returns only the most recent value, matching the
        query-interval-0 configuration of the Fig 5 study.
        """
        t0 = time.perf_counter_ns()
        try:
            view = self._query_relative(topic, offset_ns)
            san = hooks.CURRENT
            if san is not None:
                san.on_query_view(topic, view)
            return view
        finally:
            self._m_latency_rel.observe(time.perf_counter_ns() - t0)

    def _query_relative(self, topic: str, offset_ns: int) -> CacheView:
        virtual = self.virtual.get(topic)
        if virtual is not None:
            # Anchor at the newest reading among the expression's inputs.
            newest = max(
                self.query_relative(t, 0).last().timestamp
                for t in virtual.inputs
            )
            return self._eval_virtual(virtual, newest - offset_ns, newest)
        cache = self._host.cache_for(topic)
        if cache is not None and len(cache):
            self._m_hits.inc()
            return cache.view_relative(offset_ns)
        storage = self._host.storage
        if storage is not None:
            newest = storage.latest(topic)
            if newest is not None:
                self._m_fallbacks.inc()
                ts, val = storage.query(
                    topic, newest.timestamp - offset_ns, newest.timestamp
                )
                return CacheView([(ts, val)])
        self._m_misses.inc()
        raise QueryError(f"no data available for sensor {topic}")

    def query_absolute(self, topic: str, start_ts: int, end_ts: int) -> CacheView:
        """Readings with timestamps in ``[start_ts, end_ts]`` (O(log N)).

        Served from the cache when it covers the full range; otherwise
        from the storage backend (Collect Agents), otherwise whatever
        partial window the cache holds (Pushers, which have no backend).
        """
        t0 = time.perf_counter_ns()
        try:
            view = self._query_absolute(topic, start_ts, end_ts)
            san = hooks.CURRENT
            if san is not None:
                san.on_query_view(topic, view)
            return view
        finally:
            self._m_latency_abs.observe(time.perf_counter_ns() - t0)

    def _query_absolute(self, topic: str, start_ts: int, end_ts: int) -> CacheView:
        if start_ts > end_ts:
            raise QueryError(f"inverted range: {start_ts} > {end_ts}")
        virtual = self.virtual.get(topic)
        if virtual is not None:
            return self._eval_virtual(virtual, start_ts, end_ts)
        cache = self._host.cache_for(topic)
        if cache is not None and len(cache):
            oldest = cache.oldest()
            if oldest is not None and oldest.timestamp <= start_ts:
                self._m_hits.inc()
                return cache.view_absolute(start_ts, end_ts)
        storage = self._host.storage
        if storage is not None and topic in storage:
            self._m_fallbacks.inc()
            ts, val = storage.query(topic, start_ts, end_ts)
            return CacheView([(ts, val)])
        if cache is not None and len(cache):
            # Pusher with a partially covering cache: return what exists.
            self._m_hits.inc()
            return cache.view_absolute(start_ts, end_ts)
        self._m_misses.inc()
        raise QueryError(f"no data available for sensor {topic}")

    def query_many_relative(
        self, topics: List[str], offset_ns: int
    ) -> List[CacheView]:
        """Relative-mode query over several sensors at once."""
        return [self.query_relative(t, offset_ns) for t in topics]

    def query_many_absolute(
        self, topics: List[str], start_ts: int, end_ts: int
    ) -> List[CacheView]:
        """Absolute-mode query over several sensors at once."""
        return [self.query_absolute(t, start_ts, end_ts) for t in topics]

    # ------------------------------------------------------------------
    # Batched queries (compiled plans)
    # ------------------------------------------------------------------

    def compile_plan(
        self, topics: Sequence[str], window_ns: int
    ) -> QueryPlan:
        """Resolve ``topics`` into a :class:`QueryPlan` for ``window_ns``.

        Resolution order mirrors the scalar path exactly: virtual sensor,
        then local cache, then storage backend.  Interval-hinted caches
        become direct ring-buffer bindings; everything else degrades to a
        scalar row so batch results stay byte-identical to U scalar
        queries issued at the same instant.
        """
        if window_ns < 0:
            raise QueryError(f"negative relative offset: {window_ns}")
        gen = self._navigator.generation
        rows: List[tuple] = []
        width = 1
        has_storage = self._host.storage is not None
        for topic in topics:
            if self.virtual.get(topic) is not None:
                rows.append((_ROW_SCALAR, topic, 0))
                continue
            cache = self._host.cache_for(topic)
            if cache is None:
                kind = _ROW_SCALAR if has_storage else _ROW_MISS
                rows.append((kind, topic, 0))
                continue
            if cache.interval_ns <= 0:
                # No sampling interval hint: the relative window needs a
                # binary search per tick, which the scalar path provides.
                rows.append((_ROW_SCALAR, topic, 0))
                continue
            count = window_ns // cache.interval_ns + 1 if window_ns else 1
            count = min(int(count), cache.capacity)
            rows.append((_ROW_CACHE, cache, count))
            width = max(width, count)
        self._m_plan_compiles.inc()
        return QueryPlan(tuple(topics), int(window_ns), width, rows, gen)

    def plan_for(
        self, key: object, topics: Sequence[str], window_ns: int
    ) -> QueryPlan:
        """Cached :meth:`compile_plan`, invalidated by sensor-space moves.

        A cached plan is reused only while the navigator generation, the
        topic tuple and the window all match; any mismatch recompiles in
        place and counts as an invalidation.
        """
        topics = tuple(topics)
        plan = self._plans.get(key)
        if plan is not None:
            if (
                plan.generation == self._navigator.generation
                and plan.window_ns == window_ns
                and plan.topics == topics
            ):
                self._m_plan_hits.inc()
                return plan
            self._m_plan_invalidations.inc()
        plan = self.compile_plan(topics, window_ns)
        self._plans[key] = plan
        return plan

    def query_relative_batch(
        self,
        topics: Sequence[str],
        window_ns: int,
        key: object = None,
    ) -> BatchWindow:
        """Batched :meth:`query_relative` over ``topics`` (the hot path).

        Returns a :class:`BatchWindow` whose row ``i`` holds exactly the
        readings ``query_relative(topics[i], window_ns)`` would return;
        topics the scalar path would raise :class:`QueryError` for come
        back as empty rows (``counts[i] == 0``) instead.

        ``key`` names the plan-cache slot (operators pass a stable
        per-operator key); without one the slot is derived from the query
        itself.  When the runtime sanitizer is active the batch is served
        through the scalar path so per-view invariant checks still fire.
        """
        t0 = time.perf_counter_ns()
        try:
            if hooks.CURRENT is not None:
                return self._batch_via_scalar(topics, window_ns)
            if key is None:
                key = ("auto", tuple(topics), int(window_ns))
            plan = self.plan_for(key, topics, window_ns)
            return self._execute_plan(plan)
        finally:
            self._m_latency_batch.observe(time.perf_counter_ns() - t0)

    def _batch_via_scalar(
        self, topics: Sequence[str], window_ns: int
    ) -> BatchWindow:
        """Correctness-path batch: U instrumented scalar queries."""
        fetched = []
        width = 1
        for topic in topics:
            try:
                view = self.query_relative(topic, window_ns)
                ts, val = view.timestamps(), view.values()
            except QueryError:
                ts, val = None, None
            fetched.append((ts, val))
            if ts is not None:
                width = max(width, len(ts))
        return self._assemble(topics, fetched, width)

    def _execute_plan(self, plan: QueryPlan) -> BatchWindow:
        """Run a compiled plan: zero lookups on the cache-bound rows."""
        width = plan.width
        # Scalar rows first — their result length can exceed the planned
        # width (storage backends are not capacity-bounded).  Cache-bound
        # rows whose ring emptied since compile time degrade the same way.
        scalar: Dict[int, tuple] = {}
        for i, topic in plan.scalar_rows:
            try:
                view = self._query_relative(topic, plan.window_ns)
                ts, val = view.timestamps(), view.values()
                scalar[i] = (ts, val)
                width = max(width, len(ts))
            except QueryError:
                scalar[i] = (None, None)
        for i, cache, _count in plan.cache_rows:
            if cache._size:
                continue
            try:
                view = self._query_relative(plan.topics[i], plan.window_ns)
                ts, val = view.timestamps(), view.values()
                scalar[i] = (ts, val)
                width = max(width, len(ts))
            except QueryError:
                scalar[i] = (None, None)
        if plan.miss_rows:
            self._m_misses.inc(len(plan.miss_rows))
        u = len(plan.rows)
        values = np.full((u, width), np.nan, dtype=np.float64)
        timestamps = np.zeros((u, width), dtype=np.int64)
        counts = np.zeros(u, dtype=np.int64)
        hits = 0
        for i, cache, count in plan.cache_rows:
            if not cache._size:
                continue  # filled from the scalar dict below
            # Direct ring read: the cache writes its tail slices into
            # the result row without intermediate view objects.
            counts[i] = cache.tail_into(timestamps[i], values[i], count)
            hits += 1
        for i, (ts, val) in scalar.items():
            if ts is not None and len(ts):
                n = len(ts)
                timestamps[i, width - n:] = ts
                values[i, width - n:] = val
                counts[i] = n
        if hits:
            self._m_hits.inc(hits)
        return BatchWindow(plan.topics, values, timestamps, counts)

    @staticmethod
    def _assemble(
        topics: Sequence[str], fetched: List[tuple], width: int
    ) -> BatchWindow:
        """Pack per-topic (ts, val) pairs into a right-aligned window."""
        u = len(fetched)
        values = np.full((u, width), np.nan, dtype=np.float64)
        timestamps = np.zeros((u, width), dtype=np.int64)
        counts = np.zeros(u, dtype=np.int64)
        for i, (ts, val) in enumerate(fetched):
            if ts is None or not len(ts):
                continue
            n = len(ts)
            timestamps[i, width - n:] = ts
            values[i, width - n:] = val
            counts[i] = n
        return BatchWindow(topics, values, timestamps, counts)

    # ------------------------------------------------------------------
    # Derived conveniences used by several plugins
    # ------------------------------------------------------------------

    def window_values(
        self, topic: str, offset_ns: int, delta: bool = False
    ) -> np.ndarray:
        """Values of a relative window; with ``delta`` the per-interval
        differences of a monotonic counter (one element shorter)."""
        view = self.query_relative(topic, offset_ns)
        values = view.values()
        if delta:
            return np.diff(values)
        return values

    def rate(self, topic: str, offset_ns: int) -> float:
        """Average per-second rate of a monotonic counter over a window.

        Returns NaN when fewer than two readings are available.
        """
        view = self.query_relative(topic, offset_ns)
        if len(view) < 2:
            return float("nan")
        ts = view.timestamps()
        val = view.values()
        span_s = (int(ts[-1]) - int(ts[0])) / 1e9
        if span_s <= 0:
            return float("nan")
        return float((val[-1] - val[0]) / span_s)
