"""The Query Engine (Section V-B).

The Query Engine is the single component through which operator plugins
obtain sensor data, isolating them from *where* they are instantiated:
the same plugin code runs in a Pusher (local caches only) or a Collect
Agent (caches plus Storage Backend fallback).

Queries come in two modes matching the paper:

- :meth:`query_relative` — a nanosecond offset against each sensor's
  most recent reading; served from the cache in O(1) via index
  arithmetic on the ring buffer.
- :meth:`query_absolute` — absolute timestamp bounds; served via binary
  search in O(log N), falling back to the storage backend when the
  requested range extends past the cache's retention.

Both return :class:`~repro.dcdb.cache.CacheView` objects, so operators
receive zero-copy array windows regardless of the data's origin.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

import numpy as np

from repro.common.errors import ConfigError, QueryError
from repro.dcdb.cache import CacheView, SensorCache
from repro.dcdb.virtual import VirtualSensor, VirtualSensorRegistry
from repro.core.navigator import SensorNavigator
from repro.sanitizer import hooks
from repro.telemetry import MetricRegistry

#: Host callback returning the cache for a topic (or None).
CacheLookup = Callable[[str], Optional[SensorCache]]


class QueryEngine:
    """Cache-first sensor data access for operator plugins.

    One engine exists per hosting component (Pusher or Collect Agent) —
    the "singleton" of the paper is per-process; here it is per-host so
    multiple simulated hosts coexist in one interpreter.

    Args:
        host: any object exposing ``cache_for(topic)``, ``storage``
            (may be ``None``) and ``sensor_topics()`` — both DCDB host
            classes qualify.
        navigator: optional pre-built navigator; by default one is
            constructed from the host's current sensor space.
    """

    def __init__(self, host, navigator: Optional[SensorNavigator] = None) -> None:
        self._host = host
        self._navigator = navigator or SensorNavigator.from_topics(
            host.sensor_topics()
        )
        # Shares the host's metric registry when it has one (Pusher /
        # Collect Agent); standalone engines get a private registry so
        # instrumentation is unconditional.
        host_registry = getattr(host, "telemetry", None)
        self.telemetry: MetricRegistry = (
            host_registry if host_registry is not None else MetricRegistry()
        )
        self._m_hits = self.telemetry.counter("qe_cache_hits_total")
        self._m_fallbacks = self.telemetry.counter("qe_storage_fallbacks_total")
        self._m_misses = self.telemetry.counter("qe_misses_total")
        self._m_latency_rel = self.telemetry.histogram(
            "qe_query_latency_ns", mode="relative"
        )
        self._m_latency_abs = self.telemetry.histogram(
            "qe_query_latency_ns", mode="absolute"
        )
        self.virtual = VirtualSensorRegistry()
        self._virtual_in_flight: set = set()

    # ------------------------------------------------------------------
    # Telemetry-backed counters (kept as attributes for compatibility)
    # ------------------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        """Queries answered from a sensor cache."""
        return self._m_hits.value

    @property
    def storage_fallbacks(self) -> int:
        """Queries answered from the storage backend."""
        return self._m_fallbacks.value

    @property
    def misses(self) -> int:
        """Queries no data source could answer."""
        return self._m_misses.value

    # ------------------------------------------------------------------
    # Sensor space
    # ------------------------------------------------------------------

    @property
    def navigator(self) -> SensorNavigator:
        """The Sensor Navigator over the host's sensor space."""
        return self._navigator

    def refresh_navigator(self) -> None:
        """Rebuild the navigator from the host's current sensor space.

        Needed when new sensors appear after engine construction — e.g.
        upstream pipeline stages starting to publish derived metrics.
        """
        self._navigator.rebuild(self._host.sensor_topics())

    def topics(self) -> List[str]:
        """All topics currently queryable on this host (incl. virtual)."""
        return sorted(set(self._host.sensor_topics()) | set(self.virtual.topics()))

    # ------------------------------------------------------------------
    # Virtual sensors
    # ------------------------------------------------------------------

    def define_virtual(
        self, topic: str, expression: str, interval_ns: int
    ) -> VirtualSensor:
        """Register a query-time-evaluated virtual sensor.

        Virtual sensors may reference other virtual sensors; cycles are
        rejected at evaluation time.
        """
        return self.virtual.define(topic, expression, interval_ns)

    def _fetch_for_virtual(self, topic: str, start: int, end: int):
        view = self.query_absolute(topic, start, end)
        return view.timestamps(), view.values()

    def _eval_virtual(
        self, sensor: VirtualSensor, start_ts: int, end_ts: int
    ) -> CacheView:
        if sensor.topic in self._virtual_in_flight:
            raise ConfigError(
                f"virtual sensor cycle through {sensor.topic}"
            )
        self._virtual_in_flight.add(sensor.topic)
        try:
            ts, values = sensor.evaluate(
                self._fetch_for_virtual, start_ts, end_ts
            )
        finally:
            self._virtual_in_flight.discard(sensor.topic)
        return CacheView([(ts, values)])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def latest(self, topic: str) -> CacheView:
        """The most recent reading of ``topic``."""
        return self.query_relative(topic, 0)

    def query_relative(self, topic: str, offset_ns: int) -> CacheView:
        """Readings within ``offset_ns`` of the newest reading (O(1)).

        A zero offset returns only the most recent value, matching the
        query-interval-0 configuration of the Fig 5 study.
        """
        t0 = time.perf_counter_ns()
        try:
            view = self._query_relative(topic, offset_ns)
            san = hooks.CURRENT
            if san is not None:
                san.on_query_view(topic, view)
            return view
        finally:
            self._m_latency_rel.observe(time.perf_counter_ns() - t0)

    def _query_relative(self, topic: str, offset_ns: int) -> CacheView:
        virtual = self.virtual.get(topic)
        if virtual is not None:
            # Anchor at the newest reading among the expression's inputs.
            newest = max(
                self.query_relative(t, 0).last().timestamp
                for t in virtual.inputs
            )
            return self._eval_virtual(virtual, newest - offset_ns, newest)
        cache = self._host.cache_for(topic)
        if cache is not None and len(cache):
            self._m_hits.inc()
            return cache.view_relative(offset_ns)
        storage = self._host.storage
        if storage is not None:
            newest = storage.latest(topic)
            if newest is not None:
                self._m_fallbacks.inc()
                ts, val = storage.query(
                    topic, newest.timestamp - offset_ns, newest.timestamp
                )
                return CacheView([(ts, val)])
        self._m_misses.inc()
        raise QueryError(f"no data available for sensor {topic}")

    def query_absolute(self, topic: str, start_ts: int, end_ts: int) -> CacheView:
        """Readings with timestamps in ``[start_ts, end_ts]`` (O(log N)).

        Served from the cache when it covers the full range; otherwise
        from the storage backend (Collect Agents), otherwise whatever
        partial window the cache holds (Pushers, which have no backend).
        """
        t0 = time.perf_counter_ns()
        try:
            view = self._query_absolute(topic, start_ts, end_ts)
            san = hooks.CURRENT
            if san is not None:
                san.on_query_view(topic, view)
            return view
        finally:
            self._m_latency_abs.observe(time.perf_counter_ns() - t0)

    def _query_absolute(self, topic: str, start_ts: int, end_ts: int) -> CacheView:
        if start_ts > end_ts:
            raise QueryError(f"inverted range: {start_ts} > {end_ts}")
        virtual = self.virtual.get(topic)
        if virtual is not None:
            return self._eval_virtual(virtual, start_ts, end_ts)
        cache = self._host.cache_for(topic)
        if cache is not None and len(cache):
            oldest = cache.oldest()
            if oldest is not None and oldest.timestamp <= start_ts:
                self._m_hits.inc()
                return cache.view_absolute(start_ts, end_ts)
        storage = self._host.storage
        if storage is not None and topic in storage:
            self._m_fallbacks.inc()
            ts, val = storage.query(topic, start_ts, end_ts)
            return CacheView([(ts, val)])
        if cache is not None and len(cache):
            # Pusher with a partially covering cache: return what exists.
            self._m_hits.inc()
            return cache.view_absolute(start_ts, end_ts)
        self._m_misses.inc()
        raise QueryError(f"no data available for sensor {topic}")

    def query_many_relative(
        self, topics: List[str], offset_ns: int
    ) -> List[CacheView]:
        """Relative-mode query over several sensors at once."""
        return [self.query_relative(t, offset_ns) for t in topics]

    def query_many_absolute(
        self, topics: List[str], start_ts: int, end_ts: int
    ) -> List[CacheView]:
        """Absolute-mode query over several sensors at once."""
        return [self.query_absolute(t, start_ts, end_ts) for t in topics]

    # ------------------------------------------------------------------
    # Derived conveniences used by several plugins
    # ------------------------------------------------------------------

    def window_values(
        self, topic: str, offset_ns: int, delta: bool = False
    ) -> np.ndarray:
        """Values of a relative window; with ``delta`` the per-interval
        differences of a monotonic counter (one element shorter)."""
        view = self.query_relative(topic, offset_ns)
        values = view.values()
        if delta:
            return np.diff(values)
        return values

    def rate(self, topic: str, offset_ns: int) -> float:
        """Average per-second rate of a monotonic counter over a window.

        Returns NaN when fewer than two readings are available.
        """
        view = self.query_relative(topic, offset_ns)
        if len(view) < 2:
            return float("nan")
        ts = view.timestamps()
        val = view.values()
        span_s = (int(ts[-1]) - int(ts[0])) / 1e9
        if span_s <= 0:
            return float("nan")
        return float((val[-1] - val[0]) / span_s)
