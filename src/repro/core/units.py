"""Units and pattern-unit resolution (Sections III-B, III-C, V-C-2).

A *unit* is the atomic component an analysis computation binds to: a
node in the sensor tree, a set of input sensors (on that node or on any
hierarchically related node) and a set of output sensors delivering the
analysis results.

A *pattern unit* specifies inputs and outputs as pattern expressions
instead of concrete topics.  :class:`UnitResolver` implements the
three-step generation process of Section V-C-2:

a) compute the domain of the output sensors' pattern expression;
b) instantiate one unit for each retrieved node in that domain;
c) for each unit, resolve its input and output sensor sets according to
   the domains of the respective expressions, keeping only nodes
   hierarchically related to the unit's own node.

A unit whose input expressions match no sensors cannot be built; in
*relaxed* mode such units are skipped, otherwise resolution fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.common.errors import UnitResolutionError
from repro.dcdb.sensor import Sensor
from repro.core.pattern import PatternExpression
from repro.core.tree import SensorTree, TreeNode


@dataclass
class Unit:
    """A concrete, resolved unit.

    Attributes:
        name: path of the tree node the unit represents.
        level: tree level of that node.
        inputs: full topics of the unit's input sensors.
        outputs: operator-output sensors (created on first write).
        tag: free-form association, e.g. the job id for job units.
    """

    name: str
    level: int
    inputs: List[str] = field(default_factory=list)
    outputs: List[Sensor] = field(default_factory=list)
    tag: Optional[str] = None

    def output_by_name(self, name: str) -> Sensor:
        """Look up an output sensor by its short name."""
        for sensor in self.outputs:
            if sensor.name == name:
                return sensor
        raise KeyError(f"unit {self.name} has no output sensor {name!r}")

    def inputs_named(self, sensor_name: str) -> List[str]:
        """All input topics whose final segment equals ``sensor_name``."""
        suffix = "/" + sensor_name
        return [t for t in self.inputs if t.endswith(suffix)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Unit({self.name!r}, inputs={len(self.inputs)}, "
            f"outputs={[s.name for s in self.outputs]})"
        )


class UnitResolver:
    """Resolves a pattern unit against a sensor tree.

    Args:
        inputs: input pattern expressions (parsed or textual).
        outputs: output pattern expressions.  The *first* output
            expression defines the unit domain — one unit is built per
            node it matches.
        relaxed: skip (rather than fail on) units with unsatisfiable
            input expressions.
        publish_outputs: whether generated output sensors are published
            over MQTT (pipelines need this; cache-only outputs do not).
    """

    def __init__(
        self,
        inputs: Sequence,
        outputs: Sequence,
        relaxed: bool = False,
        publish_outputs: bool = True,
    ) -> None:
        self.inputs = [self._as_expr(e) for e in inputs]
        self.outputs = [self._as_expr(e) for e in outputs]
        if not self.outputs:
            raise UnitResolutionError("a pattern unit needs >= 1 output")
        self.relaxed = relaxed
        self.publish_outputs = publish_outputs

    @staticmethod
    def _as_expr(e) -> PatternExpression:
        return e if isinstance(e, PatternExpression) else PatternExpression.parse(e)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def unit_domain(self, tree: SensorTree) -> List[TreeNode]:
        """Nodes the first output expression matches (step a)."""
        first = self.outputs[0]
        if first.anchor == "unit":
            raise UnitResolutionError(
                f"the unit-defining output expression must carry a level "
                f"pattern, got bare {first.sensor!r}"
            )
        return first.domain(tree)

    def resolve(self, tree: SensorTree) -> List[Unit]:
        """Build all units of the pattern (steps a-c)."""
        domain = self.unit_domain(tree)
        if not domain:
            if self.relaxed:
                return []
            raise UnitResolutionError(
                f"output expression {self.outputs[0]!s} matches no tree node"
            )
        units: List[Unit] = []
        for node in domain:
            unit = self._build_unit(tree, node)
            if unit is not None:
                units.append(unit)
        if not units and not self.relaxed:
            raise UnitResolutionError(
                "no unit of the pattern could be built (all inputs "
                "unsatisfiable)"
            )
        return units

    def resolve_for_name(self, tree: SensorTree, unit_name: str) -> Unit:
        """Build the single unit named ``unit_name``.

        This is the on-demand path: a REST request queries a specific
        unit, so only that unit is instantiated (Section IV-b).
        """
        node = tree.node(unit_name)
        if node is None:
            raise UnitResolutionError(f"no tree node {unit_name!r}")
        domain_paths = {n.path for n in self.unit_domain(tree)}
        if node.path not in domain_paths:
            raise UnitResolutionError(
                f"{unit_name!r} is outside the pattern's unit domain"
            )
        unit = self._build_unit(tree, node, strict=True)
        assert unit is not None
        return unit

    def _build_unit(
        self, tree: SensorTree, node: TreeNode, strict: bool = False
    ) -> Optional[Unit]:
        inputs: List[str] = []
        for expr in self.inputs:
            matched = self._resolve_input(tree, node, expr)
            if not matched:
                if strict or not self.relaxed:
                    raise UnitResolutionError(
                        f"unit {node.path}: input expression {expr!s} "
                        f"matches no sensor"
                    )
                return None
            inputs.extend(matched)
        outputs: List[Sensor] = []
        for expr in self.outputs:
            for target in self._related(tree, node, expr):
                outputs.append(
                    Sensor(
                        topic=f"{target.path.rstrip('/')}/{expr.sensor}"
                        if target.path != "/"
                        else f"/{expr.sensor}",
                        publish=self.publish_outputs,
                        is_operator_output=True,
                    )
                )
        if not outputs:
            if strict or not self.relaxed:
                raise UnitResolutionError(
                    f"unit {node.path}: no output sensor could be placed"
                )
            return None
        return Unit(name=node.path, level=node.level, inputs=inputs, outputs=outputs)

    def _resolve_input(
        self, tree: SensorTree, unit_node: TreeNode, expr: PatternExpression
    ) -> List[str]:
        topics: List[str] = []
        for target in self._related(tree, unit_node, expr):
            topic = target.sensor_topic(expr.sensor)
            if topic is not None:
                topics.append(topic)
        return topics

    @staticmethod
    def _related(
        tree: SensorTree, unit_node: TreeNode, expr: PatternExpression
    ) -> List[TreeNode]:
        """Nodes of the expression's domain on the unit's root-to-leaf
        paths.

        Derived structurally rather than by filtering the whole level:
        above the unit there is exactly one ancestor per level, at the
        unit's level only the unit itself qualifies, and below it a
        depth-pruned subtree walk enumerates the descendants.  This keeps
        mass instantiation (thousands of units per pattern, Section
        III-C) linear in the output instead of quadratic in the tree.
        """
        if expr.anchor == "unit":
            return [unit_node]
        level = tree.resolve_level(expr.anchor, expr.offset)
        if level == unit_node.level:
            candidates = [unit_node]
        elif level < unit_node.level:
            node = unit_node
            while node is not None and node.level > level:
                node = node.parent
            candidates = [node] if node is not None and node.level == level else []
        else:
            candidates = []
            stack = [unit_node]
            while stack:
                node = stack.pop()
                if node.level == level:
                    candidates.append(node)
                    continue
                stack.extend(node.children.values())
            candidates.reverse()
        return [n for n in candidates if expr.matches_node(n)]


def resolve_job_unit(
    tree: SensorTree,
    job_id: str,
    node_paths: Sequence[str],
    inputs: Sequence,
    output_names: Sequence[str],
    output_root: str = "/jobs",
    publish_outputs: bool = True,
    relaxed: bool = False,
) -> Unit:
    """Build a unit for one job (Section V-C: job operator plugins).

    Input expressions resolve against *each allocated node's* subtree —
    a ``<bottomup>cpi`` input on a 32-node job collects the sensor from
    every CPU of every allocated node.  Output sensors live under
    ``<output_root>/<job_id>/``, so per-job time series are ordinary
    sensors like everything else.
    """
    exprs = [
        e if isinstance(e, PatternExpression) else PatternExpression.parse(e)
        for e in inputs
    ]
    input_topics: List[str] = []
    for path in node_paths:
        node = tree.node(path)
        if node is None:
            if relaxed:
                continue
            raise UnitResolutionError(f"job {job_id}: unknown node {path}")
        for expr in exprs:
            for target in UnitResolver._related(tree, node, expr):
                topic = target.sensor_topic(expr.sensor)
                if topic is not None:
                    input_topics.append(topic)
    if not input_topics and not relaxed:
        raise UnitResolutionError(
            f"job {job_id}: no input sensor resolved on nodes {list(node_paths)}"
        )
    base = output_root.rstrip("/")
    outputs = [
        Sensor(
            topic=f"{base}/{job_id}/{name}",
            publish=publish_outputs,
            is_operator_output=True,
        )
        for name in output_names
    ]
    return Unit(
        name=f"{base}/{job_id}",
        level=-1,
        inputs=input_topics,
        outputs=outputs,
        tag=job_id,
    )
