"""Declarative deployment of a full simulated DCDB+Wintermute system.

Production DCDB is configured through files read at daemon start-up;
this module provides the equivalent for the reproduction: one JSON-able
specification describes the cluster, the monitoring plugins each Pusher
loads, the Wintermute plugin blocks per host, and the job schedule — and
:func:`build_deployment` materialises the whole system on a shared
simulation clock.

Specification shape (all sections optional except ``cluster``)::

    {
      "cluster": {"nodes": 4, "cpus": 8, "seed": 7,
                  "anomalies": {"<node-path>": 1.2}},
      "monitoring": {
        "plugins": ["sysfs", "procfs", "perfevent"],
        "perfevent_counters": ["cpu-cycles", "instructions"],
        "interval_ms": 1000,
        "cache_window_s": 180
      },
      "jobs": [
        {"app": "lammps", "nodes": 2, "start_s": 1, "end_s": 300}
      ],
      "facility": {"enabled": true, "setpoint_c": 40,
                   "interval_s": 10},
      "analytics": {
        "pushers": [ <wintermute plugin config block>, ... ],
        "agent":   [ <wintermute plugin config block>, ... ]
      },
      "storage": {
        "tiers": "tiered", "dir": "/var/tmp/wintermute-segments",
        "flush_mb": 64, "flush_interval_s": 30, "ttl_s": 0,
        "rollups": {"after_s": 3600, "minute_after_s": 86400},
        "retention": {"raw_s": 604800, "rollup_s": 0}
      },
      "network": {
        "latency_ms": 5, "jitter_ms": 2, "drop_probability": 0.0,
        "seed": 0,
        "outages": [
          {"start_s": 10, "end_s": 25,
           "destinations": ["/rack00/chassis00/node00"]}
        ],
        "spill": {"capacity": 8192, "policy": "drop-oldest",
                  "retry_base_ms": 500, "retry_max_ms": 30000,
                  "seed": 0},
        "ingest": {"queue_capacity": 100000, "policy": "drop-oldest"}
      }
    }

``jobs`` entries either give a node count (FCFS allocation) or an
explicit ``node_paths`` list.  With a ``facility`` section, a cooling
loop is attached to the cluster and sampled by a dedicated facility
Pusher under ``/facility/cooling``.

With a ``storage`` section set to ``"tiers": "tiered"``, the Collect
Agent persists through a
:class:`~repro.dcdb.segments.TieredStorageBackend`: in-memory series are
sealed into on-disk segment files past ``flush_mb``, raw segments roll
up into 10-second and 1-minute min/mean/max aggregates past the
``rollups`` horizons, and ``retention`` drops whole segments past their
horizon.  Reopening the same ``dir`` replays sealed segments (crash
recovery).  ``"tiers": "memory"`` (the default) keeps the in-memory
backend, optionally with a ``ttl_s`` expiry sweep.

With a ``network`` section, every Pusher publishes through a
:class:`~repro.dcdb.network.NetworkConditions` link (exposed as
``deployment.link``): latency/jitter/loss apply to each message,
``outages`` declares down-windows during which publishes are refused
and spilled into the Pushers' store-and-forward queues (``spill``
knobs), and ``ingest`` bounds the Collect Agent's MQTT queue.
"""

from __future__ import annotations

import json
import tempfile
from typing import Dict, Optional, Sequence

import numpy as np

from repro.common.errors import ConfigError
from repro.common.timeutil import NS_PER_MS, NS_PER_SEC
from repro.core.manager import OperatorManager
from repro.dcdb import Broker, CollectAgent, Pusher
from repro.dcdb.network import NetworkConditions
from repro.dcdb.plugins import (
    OpaPlugin,
    PerfeventPlugin,
    ProcfsPlugin,
    SysfsPlugin,
    TesterMonitoringPlugin,
)
from repro.simulator import ClusterSimulator, ClusterSpec
from repro.simulator.clock import TaskScheduler
from repro.simulator.scheduler import Job

_MONITORING_PLUGINS = ("sysfs", "procfs", "perfevent", "opa", "tester")

_STORAGE_TIERS = ("memory", "tiered")


def storage_from_block(block: Optional[dict]):
    """Build the Collect Agent's storage backend from a spec's
    ``storage`` section (None keeps the agent's default backend)."""
    from repro.dcdb.storage import StorageBackend

    if not block:
        return None
    tiers = block.get("tiers", "memory")
    if tiers not in _STORAGE_TIERS:
        raise ConfigError(f"unknown storage tiers mode: {tiers!r}")
    ttl_ns = int(block.get("ttl_s", 0) * NS_PER_SEC)
    if tiers == "memory":
        return StorageBackend(ttl_ns=ttl_ns) if ttl_ns > 0 else None
    from repro.dcdb.segments import TieredStorageBackend

    directory = block.get("dir")
    if not directory:
        # Per-run scratch tier; intentionally not auto-deleted, so a
        # restarted process pointed at the printed path can replay it.
        directory = tempfile.mkdtemp(prefix="wintermute-segments-")
    rollups = block.get("rollups", {})
    retention = block.get("retention", {})
    return TieredStorageBackend(
        directory,
        flush_mb=float(block.get("flush_mb", 64.0)),
        rollup_after_ns=int(rollups.get("after_s", 0) * NS_PER_SEC),
        rollup_minute_after_ns=int(
            rollups.get("minute_after_s", 0) * NS_PER_SEC
        ),
        retention_raw_ns=int(retention.get("raw_s", 0) * NS_PER_SEC),
        retention_rollup_ns=int(retention.get("rollup_s", 0) * NS_PER_SEC),
        ttl_ns=ttl_ns,
        maintenance_interval_ns=int(
            block.get("flush_interval_s", 30) * NS_PER_SEC
        ),
    )


class Deployment:
    """A running simulated system: simulator, pushers, agent, analytics.

    Build directly for programmatic use, or via :func:`build_deployment`
    from a declarative spec.  The benchmark harness and the examples are
    both thin layers over this class.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        seed: int = 0xDCDB,
        monitoring: Sequence[str] = ("sysfs",),
        perfevent_counters: Optional[Sequence[str]] = None,
        sampling_interval_ns: int = NS_PER_SEC,
        cache_window_ns: int = 180 * NS_PER_SEC,
        anomalies: Optional[Dict[str, float]] = None,
        tester_sensors: int = 100,
        network: Optional[dict] = None,
        storage: Optional[dict] = None,
    ) -> None:
        unknown = set(monitoring) - set(_MONITORING_PLUGINS)
        if unknown:
            raise ConfigError(f"unknown monitoring plugins: {sorted(unknown)}")
        self.sim = ClusterSimulator(spec, seed=seed, anomalies=anomalies)
        self.scheduler = TaskScheduler()
        self.broker = Broker()
        self.link: Optional[NetworkConditions] = None
        self._transport = self.broker
        self._pusher_kwargs: Dict[str, object] = {}
        agent_kwargs: Dict[str, object] = {}
        if network is not None:
            self.link = NetworkConditions(
                self.broker,
                self.scheduler,
                latency_ns=int(network.get("latency_ms", 0) * NS_PER_MS),
                jitter_ns=int(network.get("jitter_ms", 0) * NS_PER_MS),
                drop_probability=network.get("drop_probability", 0.0),
                seed=network.get("seed", 0),
            )
            self._transport = self.link
            for outage in network.get("outages", []):
                self.link.schedule_outage(
                    int(outage["start_s"] * NS_PER_SEC),
                    int(outage["end_s"] * NS_PER_SEC),
                    destinations=outage.get("destinations"),
                )
            spill = network.get("spill", {})
            for src, dst, scale in (
                ("capacity", "spill_capacity", None),
                ("policy", "spill_policy", None),
                ("retry_base_ms", "retry_base_ns", NS_PER_MS),
                ("retry_max_ms", "retry_max_ns", NS_PER_MS),
                ("seed", "retry_seed", None),
            ):
                if src in spill:
                    value = spill[src]
                    self._pusher_kwargs[dst] = (
                        int(value * scale) if scale else value
                    )
            ingest = network.get("ingest", {})
            if "queue_capacity" in ingest:
                agent_kwargs["ingest_queue_capacity"] = ingest["queue_capacity"]
            if "policy" in ingest:
                agent_kwargs["ingest_policy"] = ingest["policy"]
        self.pushers: Dict[str, Pusher] = {}
        self.managers: Dict[str, OperatorManager] = {}
        for node in self.sim.node_paths:
            pusher = Pusher(
                node, self._transport, self.scheduler,
                cache_window_ns=cache_window_ns,
                **self._pusher_kwargs,
            )
            if "sysfs" in monitoring:
                pusher.add_plugin(
                    SysfsPlugin(self.sim, node, interval_ns=sampling_interval_ns)
                )
            if "procfs" in monitoring:
                pusher.add_plugin(
                    ProcfsPlugin(self.sim, node, interval_ns=sampling_interval_ns)
                )
            if "perfevent" in monitoring:
                kwargs = {"interval_ns": sampling_interval_ns}
                if perfevent_counters is not None:
                    kwargs["counters"] = list(perfevent_counters)
                pusher.add_plugin(PerfeventPlugin(self.sim, node, **kwargs))
            if "opa" in monitoring:
                pusher.add_plugin(
                    OpaPlugin(self.sim, node, interval_ns=sampling_interval_ns)
                )
            if "tester" in monitoring:
                pusher.add_plugin(
                    TesterMonitoringPlugin(
                        node,
                        n_sensors=tester_sensors,
                        interval_ns=sampling_interval_ns,
                    )
                )
            manager = OperatorManager(
                context={"job_source": self.sim.scheduler}
            )
            pusher.attach_analytics(manager)
            self.pushers[node] = pusher
            self.managers[node] = manager
        storage_backend = storage_from_block(storage)
        if storage_backend is not None:
            agent_kwargs["storage"] = storage_backend
        self.agent = CollectAgent(
            "agent", self.broker, self.scheduler,
            cache_window_ns=cache_window_ns,
            **agent_kwargs,
        )
        self.agent_manager = OperatorManager(
            context={"job_source": self.sim.scheduler}
        )
        self.agent.attach_analytics(self.agent_manager)
        self.cooling = None
        self.facility_pusher: Optional[Pusher] = None

    def attach_facility(
        self, setpoint_c: Optional[float] = None, interval_ns: int = 10 * NS_PER_SEC
    ):
        """Attach a cooling loop plus its facility Pusher.

        Returns the :class:`~repro.simulator.facility.CoolingSystem`,
        which is also injected as ``cooling`` context into every
        analytics manager (for control operators).
        """
        from repro.simulator.facility import CoolingSystem, FacilityPlugin

        if self.cooling is not None:
            raise ConfigError("facility already attached")
        self.cooling = CoolingSystem(self.sim)
        if setpoint_c is not None:
            self.cooling.set_setpoint(setpoint_c)
        self.facility_pusher = Pusher(
            "facility", self._transport, self.scheduler,
            **self._pusher_kwargs,
        )
        self.facility_pusher.add_plugin(
            FacilityPlugin(self.cooling, interval_ns=interval_ns)
        )
        for manager in list(self.managers.values()) + [self.agent_manager]:
            manager._context.setdefault("cooling", self.cooling)
        return self.cooling

    # ------------------------------------------------------------------

    def all_hosts(self):
        """Every cache-holding component: node pushers, the facility
        pusher (when attached) and the collect agent.  Used by the
        runtime sanitizer's whole-deployment cache scans."""
        hosts = list(self.pushers.values())
        if self.facility_pusher is not None:
            hosts.append(self.facility_pusher)
        hosts.append(self.agent)
        return hosts

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self.scheduler.clock.now

    def run(self, seconds: float) -> None:
        """Advance the whole deployment by simulated seconds."""
        self.scheduler.run_until(self.now + int(seconds * NS_PER_SEC))

    def series(self, topic: str):
        """(timestamps_s, values) of a topic from the agent's storage."""
        self.agent.flush()
        ts, val = self.agent.storage.query(topic, 0, 2**62)
        return np.asarray(ts) / NS_PER_SEC, np.asarray(val)

    def latest(self, topic: str):
        """Most recent reading of a topic from the agent's view."""
        self.agent.flush()
        cache = self.agent.cache_for(topic)
        if cache is not None and len(cache):
            return cache.latest()
        return self.agent.storage.latest(topic)


def cluster_spec_from_block(block: dict) -> ClusterSpec:
    """Translate a deployment spec's ``cluster`` section into a
    :class:`ClusterSpec` (shared with the static analyzer)."""
    return _cluster_spec(block)


def _cluster_spec(block: dict) -> ClusterSpec:
    if "racks" in block:
        return ClusterSpec(
            racks=block["racks"],
            chassis_per_rack=block.get("chassis_per_rack", 1),
            nodes_per_chassis=block.get("nodes_per_chassis", 1),
            cpus_per_node=block.get("cpus", 4),
            total_nodes=block.get(
                "nodes",
                block["racks"]
                * block.get("chassis_per_rack", 1)
                * block.get("nodes_per_chassis", 1),
            ),
        )
    if block.get("preset") == "coolmuc3":
        return ClusterSpec.coolmuc3()
    return ClusterSpec.small(
        nodes=block.get("nodes", 4), cpus=block.get("cpus", 4)
    )


def build_deployment(config: dict) -> Deployment:
    """Materialise a deployment from a declarative specification."""
    if "cluster" not in config:
        raise ConfigError("deployment spec needs a 'cluster' section")
    cluster = config["cluster"]
    monitoring = config.get("monitoring", {})
    dep = Deployment(
        _cluster_spec(cluster),
        seed=cluster.get("seed", 0xDCDB),
        monitoring=tuple(monitoring.get("plugins", ("sysfs",))),
        perfevent_counters=monitoring.get("perfevent_counters"),
        sampling_interval_ns=int(
            monitoring.get("interval_ms", 1000) * NS_PER_MS
        ),
        cache_window_ns=int(
            monitoring.get("cache_window_s", 180) * NS_PER_SEC
        ),
        anomalies=cluster.get("anomalies"),
        tester_sensors=monitoring.get("tester_sensors", 100),
        network=config.get("network"),
        storage=config.get("storage"),
    )
    for i, job_block in enumerate(config.get("jobs", [])):
        start = int(job_block.get("start_s", 0) * NS_PER_SEC)
        end = int(job_block["end_s"] * NS_PER_SEC)
        if "node_paths" in job_block:
            dep.sim.scheduler.add_job(
                Job(
                    job_block.get("id", f"job{i}"),
                    job_block["app"],
                    tuple(job_block["node_paths"]),
                    start,
                    end,
                )
            )
        else:
            dep.sim.scheduler.submit(
                job_block["app"],
                job_block.get("nodes", 1),
                start,
                end,
                job_id=job_block.get("id"),
            )
    facility = config.get("facility", {})
    if facility.get("enabled"):
        dep.attach_facility(
            setpoint_c=facility.get("setpoint_c"),
            interval_ns=int(facility.get("interval_s", 10) * NS_PER_SEC),
        )
    analytics = config.get("analytics", {})
    for block in analytics.get("pushers", []):
        for manager in dep.managers.values():
            manager.load_plugin(block)
    for block in analytics.get("agent", []):
        dep.agent_manager.load_plugin(block)
    if analytics:
        # With every block loaded, plan pipeline fusion once per host.
        # The planner is conservative: hosts with no eligible chain
        # (agent storage, published intermediates, period mismatches)
        # simply keep their staged per-operator schedule.
        for manager in dep.managers.values():
            manager.refresh_fusion()
        dep.agent_manager.refresh_fusion()
    return dep


def load_deployment(path: str) -> Deployment:
    """Build a deployment from a JSON specification file."""
    with open(path, "r", encoding="utf-8") as fh:
        return build_deployment(json.load(fh))
