"""DCDB monitoring substrate.

This package is a from-scratch reimplementation of the parts of the DCDB
monitoring framework (Netti et al., SC 2019) that Wintermute builds on:

- :mod:`repro.dcdb.sensor` -- sensors and readings.
- :mod:`repro.dcdb.cache` -- per-sensor in-memory ring-buffer caches with
  O(1) relative and O(log N) absolute views.
- :mod:`repro.dcdb.mqtt` -- an in-process MQTT-style broker (topic tree,
  ``+``/``#`` wildcards) standing in for a networked MQTT server.
- :mod:`repro.dcdb.storage` -- an in-memory time-series storage backend
  standing in for Apache Cassandra.
- :mod:`repro.dcdb.pusher` -- the Pusher component: hosts monitoring
  plugins, samples sensors, publishes readings.
- :mod:`repro.dcdb.collectagent` -- the Collect Agent: subscribes to
  pusher traffic and persists it to the storage backend.
- :mod:`repro.dcdb.restapi` -- the RESTful control surface every DCDB
  component exposes.
- :mod:`repro.dcdb.plugins` -- monitoring plugins (tester, perfevent,
  sysfs, procfs, opa), driven by the cluster simulator.
"""

from repro.dcdb.sensor import Sensor, SensorReading
from repro.dcdb.cache import SensorCache, CacheView
from repro.dcdb.mqtt import Broker, Message
from repro.dcdb.storage import StorageBackend
from repro.dcdb.pusher import Pusher
from repro.dcdb.collectagent import CollectAgent
from repro.dcdb.restapi import RestApi, RestRequest, RestResponse
from repro.dcdb.virtual import VirtualSensor, VirtualSensorRegistry

__all__ = [
    "VirtualSensor",
    "VirtualSensorRegistry",
    "Sensor",
    "SensorReading",
    "SensorCache",
    "CacheView",
    "Broker",
    "Message",
    "StorageBackend",
    "Pusher",
    "CollectAgent",
    "RestApi",
    "RestRequest",
    "RestResponse",
]
