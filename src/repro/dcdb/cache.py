"""Per-sensor in-memory caches.

Every DCDB component keeps a *sensor cache* holding the most recent
readings of each sensor it sees, enabling fast in-memory access without a
round trip to the storage backend.  The Wintermute Query Engine reads
these caches in two modes (Section V-B of the paper):

- **relative**: the caller supplies an offset against the most recent
  reading; the view is computed with index arithmetic in O(1), using the
  sensor's nominal sampling interval.
- **absolute**: the caller supplies absolute timestamps; the bounds are
  located with binary search in O(log N).

The cache is a fixed-capacity ring buffer over two parallel NumPy arrays
(int64 timestamps, float64 values).

**Snapshot semantics.**  Views handed out by a :class:`SensorCache` are
*snapshots*: the (at most two) window slices are materialised into one
contiguous copy at view creation, so readings stored after the view is
taken — including stores that wrap around the ring and overwrite the
viewed slots — can never rewrite a view's contents mid-computation.
Views built from already-private arrays (storage query results, virtual
sensor evaluations) skip the copy, keeping those paths zero-copy.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.common.errors import QueryError
from repro.common.timeutil import NS_PER_SEC
from repro.dcdb.sensor import SensorReading


class CacheView:
    """A window over sensor readings.

    Holds one or two (timestamps, values) slice pairs.  Iteration yields
    :class:`SensorReading` tuples oldest-first.  ``timestamps()`` and
    ``values()`` concatenate lazily and cache the result.

    With ``snapshot=True`` the segments are materialised into one
    contiguous private copy immediately — required whenever the source
    arrays are a live ring buffer that later stores may overwrite.
    Views over arrays the caller already owns (storage results, virtual
    sensor output) keep the default zero-copy behaviour.
    """

    __slots__ = ("_segments", "_ts", "_val")

    def __init__(self, segments, snapshot: bool = False):
        self._segments = [
            (ts, val) for ts, val in segments if len(ts) > 0
        ]
        self._ts: Optional[np.ndarray] = None
        self._val: Optional[np.ndarray] = None
        if snapshot and self._segments:
            if len(self._segments) == 1:
                ts, val = self._segments[0]
                self._ts = ts.copy()
                self._val = val.copy()
            else:
                self._ts = np.concatenate(
                    [ts for ts, _ in self._segments]
                )
                self._val = np.concatenate(
                    [val for _, val in self._segments]
                )
            self._segments = [(self._ts, self._val)]

    def __len__(self) -> int:
        return sum(len(ts) for ts, _ in self._segments)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator[SensorReading]:
        return iter(self.readings())

    def readings(self) -> "list[SensorReading]":
        """All readings oldest-first as a list.

        Converts both columns with a single ``tolist()`` each — per-slot
        ``int(ts[i])``/``float(val[i])`` indexing boxes one NumPy scalar
        per element and dominates iteration-heavy plugin loops.
        """
        ts = self.timestamps().tolist()
        val = self.values().tolist()
        return [SensorReading(t, v) for t, v in zip(ts, val)]

    def timestamps(self) -> np.ndarray:
        """All timestamps oldest-first (concatenated once, then cached)."""
        if self._ts is None:
            if len(self._segments) == 1:
                self._ts = self._segments[0][0]
            elif not self._segments:
                self._ts = np.empty(0, dtype=np.int64)
            else:
                self._ts = np.concatenate([ts for ts, _ in self._segments])
        return self._ts

    def values(self) -> np.ndarray:
        """All values oldest-first (concatenated once, then cached)."""
        if self._val is None:
            if len(self._segments) == 1:
                self._val = self._segments[0][1]
            elif not self._segments:
                self._val = np.empty(0, dtype=np.float64)
            else:
                self._val = np.concatenate([v for _, v in self._segments])
        return self._val

    def first(self) -> SensorReading:
        """Oldest reading in the view."""
        if not self:
            raise QueryError("empty cache view")
        ts, val = self._segments[0]
        return SensorReading(int(ts[0]), float(val[0]))

    def last(self) -> SensorReading:
        """Newest reading in the view."""
        if not self:
            raise QueryError("empty cache view")
        ts, val = self._segments[-1]
        return SensorReading(int(ts[-1]), float(val[-1]))

    @staticmethod
    def empty() -> "CacheView":
        """A view over no readings."""
        return CacheView([])

    @classmethod
    def _snapshot_of(cls, ts: np.ndarray, val: np.ndarray) -> "CacheView":
        """Fast-path constructor around already-materialised copies.

        Skips the generic segment filtering of ``__init__``; used by the
        cache's view methods, which produce exactly one contiguous
        private (timestamps, values) pair per view.
        """
        view = cls.__new__(cls)
        view._ts = ts
        view._val = val
        view._segments = [(ts, val)] if len(ts) else []
        return view


class SensorCache:
    """Fixed-capacity ring buffer of readings for one sensor.

    Args:
        capacity: maximum number of retained readings.  Alternatively use
            :meth:`for_duration` to size the buffer from a time window and
            a nominal sampling interval, as DCDB does (e.g. a 180 s cache
            at 1 s sampling).
        interval_ns: nominal sampling interval; enables O(1) relative
            views.  When 0, relative views fall back to binary search.
    """

    __slots__ = (
        "_ts", "_val", "_cap", "_head", "_size", "interval_ns", "stale_drops"
    )

    def __init__(self, capacity: int, interval_ns: int = 0):
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive: {capacity}")
        self._cap = int(capacity)
        self._ts = np.zeros(self._cap, dtype=np.int64)
        self._val = np.zeros(self._cap, dtype=np.float64)
        self._head = 0  # index of the next write slot
        self._size = 0
        self.interval_ns = int(interval_ns)
        #: Readings rejected for violating timestamp monotonicity; hosts
        #: surface the aggregate as a telemetry drop gauge.
        self.stale_drops = 0

    @staticmethod
    def capacity_for_duration(
        window_ns: int, interval_ns: int, slack: float = 1.2
    ) -> int:
        """Ring capacity needed for ``window_ns`` at ``interval_ns``.

        Exposed separately from :meth:`for_duration` so consumers that
        only need the *sizing arithmetic* (fused-channel width planning,
        memory estimation) share it without allocating a buffer.
        """
        if interval_ns <= 0:
            raise ValueError("interval_ns must be positive")
        return max(2, int(np.ceil(window_ns / interval_ns * slack)) + 1)

    @classmethod
    def for_duration(
        cls, window_ns: int, interval_ns: int, slack: float = 1.2
    ) -> "SensorCache":
        """Size a cache to hold ``window_ns`` of data at ``interval_ns``.

        A slack factor (default 20%) absorbs sampling jitter, mirroring
        DCDB's maxHistory handling.
        """
        capacity = cls.capacity_for_duration(window_ns, interval_ns, slack)
        return cls(capacity, interval_ns=interval_ns)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def store(self, timestamp: int, value: float) -> None:
        """Append one reading.  Timestamps must be non-decreasing; stale
        (out-of-order) readings are dropped, matching DCDB semantics."""
        if self._size and timestamp < int(self._ts[(self._head - 1) % self._cap]):
            self.stale_drops += 1
            return
        self._ts[self._head] = timestamp
        self._val[self._head] = value
        self._head = (self._head + 1) % self._cap
        if self._size < self._cap:
            self._size += 1

    def store_reading(self, reading: SensorReading) -> None:
        """Append one :class:`SensorReading`."""
        self.store(reading.timestamp, reading.value)

    def store_batch(self, timestamps: np.ndarray, values: np.ndarray) -> None:
        """Append many readings at once (already time-ordered).

        The same non-decreasing-timestamp invariant as :meth:`store`
        applies: any prefix of the batch older than the newest retained
        reading is dropped, so a stale batch can never corrupt the
        sorted timestamp order that :meth:`view_absolute`'s binary
        search relies on.
        """
        n = len(timestamps)
        if n == 0:
            return
        if self._size:
            newest = int(self._ts[(self._head - 1) % self._cap])
            stale = int(np.searchsorted(timestamps, newest, side="left"))
            if stale:
                self.stale_drops += stale
                timestamps = timestamps[stale:]
                values = values[stale:]
                n -= stale
                if n == 0:
                    return
        if n >= self._cap:
            # Only the newest `cap` readings survive; write them aligned
            # to the start of the buffer.
            self._ts[:] = timestamps[n - self._cap:]
            self._val[:] = values[n - self._cap:]
            self._head = 0
            self._size = self._cap
            return
        first = min(n, self._cap - self._head)
        self._ts[self._head:self._head + first] = timestamps[:first]
        self._val[self._head:self._head + first] = values[:first]
        rest = n - first
        if rest:
            self._ts[:rest] = timestamps[first:]
            self._val[:rest] = values[first:]
        self._head = (self._head + n) % self._cap
        self._size = min(self._cap, self._size + n)

    def clear(self) -> None:
        """Drop all readings."""
        self._head = 0
        self._size = 0

    def resize(self, capacity: int) -> None:
        """Re-allocate the ring at a new capacity, preserving contents.

        The newest readings survive (all of them when growing, the
        newest ``capacity`` when shrinking).  Hosts use this to grow
        ingest caches once a remote sensor's real cadence is observed —
        the window is a retention contract, not a reading count.
        """
        capacity = int(capacity)
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive: {capacity}")
        if capacity == self._cap:
            return
        keep = min(self._size, capacity)
        kept = self._tail_view(keep)  # snapshot: private contiguous copy
        self._cap = capacity
        self._ts = np.zeros(capacity, dtype=np.int64)
        self._val = np.zeros(capacity, dtype=np.float64)
        self._head = keep % capacity
        self._size = keep
        if keep:
            self._ts[:keep] = kept.timestamps()
            self._val[:keep] = kept.values()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        """Maximum number of retained readings."""
        return self._cap

    def latest(self) -> Optional[SensorReading]:
        """Most recent reading, or ``None`` if empty."""
        if not self._size:
            return None
        i = (self._head - 1) % self._cap
        return SensorReading(int(self._ts[i]), float(self._val[i]))

    def oldest(self) -> Optional[SensorReading]:
        """Oldest retained reading, or ``None`` if empty."""
        if not self._size:
            return None
        i = (self._head - self._size) % self._cap
        return SensorReading(int(self._ts[i]), float(self._val[i]))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def tail_into(self, dst_ts: np.ndarray, dst_val: np.ndarray, count: int) -> int:
        """Copy the newest ``min(count, size)`` readings into the *tail*
        of the destination arrays, oldest-first, and return how many
        were written.

        This is the zero-intermediate-copy window primitive behind both
        the compiled query plans (``QueryEngine._execute_plan``) and the
        fused pipeline channels: the ring's one or two live segments are
        sliced straight into the caller's right-aligned row storage,
        with no per-reading loop and no temporary concatenation.  The
        destinations must be at least ``min(count, size)`` long.
        """
        n = count if count < self._size else self._size
        if n <= 0:
            return 0
        start = (self._head - n) % self._cap
        end = (self._head - 1) % self._cap + 1
        if start < end:
            dst_ts[-n:] = self._ts[start:end]
            dst_val[-n:] = self._val[start:end]
        else:
            first = self._cap - start
            dst_ts[-n:first - n] = self._ts[start:]
            dst_val[-n:first - n] = self._val[start:]
            dst_ts[first - n:] = self._ts[:end]
            dst_val[first - n:] = self._val[:end]
        return n

    def _tail_view(self, count: int) -> CacheView:
        """View over the newest ``count`` readings (<= size)."""
        count = min(count, self._size)
        if count <= 0:
            return CacheView.empty()
        ts = np.empty(count, dtype=np.int64)
        val = np.empty(count, dtype=np.float64)
        self.tail_into(ts, val, count)
        return CacheView._snapshot_of(ts, val)

    def view_latest(self) -> CacheView:
        """View containing only the most recent reading."""
        return self._tail_view(1)

    def view_relative(self, offset_ns: int) -> CacheView:
        """Readings within ``offset_ns`` of the newest reading.

        This is the O(1) path from the paper: the number of readings is
        derived from the nominal sampling interval with integer division,
        then clamped to the buffer contents.  With no interval hint the
        call degrades to an absolute query anchored at the newest
        timestamp.
        """
        if not self._size:
            return CacheView.empty()
        if offset_ns < 0:
            raise QueryError(f"negative relative offset: {offset_ns}")
        if offset_ns == 0:
            return self.view_latest()
        if self.interval_ns > 0:
            count = offset_ns // self.interval_ns + 1
            return self._tail_view(int(count))
        newest = int(self._ts[(self._head - 1) % self._cap])
        return self.view_absolute(newest - offset_ns, newest)

    def view_absolute(self, start_ts: int, end_ts: int) -> CacheView:
        """Readings with timestamps in ``[start_ts, end_ts]``.

        This is the O(log N) path: the ring is logically unrolled and the
        bounds are located with binary search on the timestamp column.
        """
        if start_ts > end_ts:
            raise QueryError(
                f"inverted absolute range: {start_ts} > {end_ts}"
            )
        if not self._size:
            return CacheView.empty()
        segs = self._ordered_segments()
        out = []
        for ts, val in segs:
            lo = int(np.searchsorted(ts, start_ts, side="left"))
            hi = int(np.searchsorted(ts, end_ts, side="right"))
            if lo < hi:
                out.append((ts[lo:hi], val[lo:hi]))
        if not out:
            return CacheView.empty()
        if len(out) == 1:
            ts, val = out[0]
            return CacheView._snapshot_of(ts.copy(), val.copy())
        return CacheView._snapshot_of(
            np.concatenate([ts for ts, _ in out]),
            np.concatenate([val for _, val in out]),
        )

    def _ordered_segments(self):
        """The live contents as 1 or 2 time-ordered slices (no copy)."""
        start = (self._head - self._size) % self._cap
        end = (self._head - 1) % self._cap + 1
        if self._size == 0:
            return []
        if start < end:
            return [(self._ts[start:end], self._val[start:end])]
        return [
            (self._ts[start:], self._val[start:]),
            (self._ts[:end], self._val[:end]),
        ]

    def memory_bytes(self) -> int:
        """Resident size of the backing arrays in bytes."""
        return self._ts.nbytes + self._val.nbytes


def default_cache(interval_ns: int, window_seconds: float = 180.0) -> SensorCache:
    """The cache DCDB configures by default: 180 s of history."""
    return SensorCache.for_duration(
        int(window_seconds * NS_PER_SEC), interval_ns
    )
