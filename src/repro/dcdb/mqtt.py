"""An in-process MQTT-style message broker.

DCDB transports all sensor data over MQTT: Pushers publish readings to
per-sensor topics, and Collect Agents subscribe and forward the stream to
the storage backend.  This reproduction keeps the same topic semantics
(slash-separated topics, ``+`` single-level and ``#`` multi-level
wildcards, retained messages) but runs in-process so experiments are
deterministic and require no network stack.

Delivery is synchronous by default: ``publish`` invokes matching
subscriber callbacks immediately, in subscription order.  A queued mode
(:class:`QueuedSubscriber`) is available for components that want to
drain messages on their own schedule, e.g. a Collect Agent batching
storage writes.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError, TopicError
from repro.common.topics import split_topic
from repro.sanitizer import hooks

#: Callback signature for subscribers: (topic, payload, timestamp_ns).
MessageHandler = Callable[[str, float, int], None]

_SINGLE = "+"
_MULTI = "#"


@dataclass(frozen=True)
class Message:
    """One published sample: a value on a topic at a timestamp."""

    topic: str
    value: float
    timestamp: int


@dataclass
class _TrieNode:
    """A node in the subscription trie keyed by topic segments."""

    children: Dict[str, "_TrieNode"] = field(default_factory=dict)
    # (subscription id, handler) pairs whose pattern ends at this node.
    handlers: List[Tuple[int, MessageHandler]] = field(default_factory=list)
    # Handlers for '#' patterns rooted here (match this node and below).
    multi_handlers: List[Tuple[int, MessageHandler]] = field(default_factory=list)


class Broker:
    """Topic-tree publish/subscribe broker.

    Subscriptions are stored in a trie over topic segments so that a
    publish visits only the trie paths compatible with the topic, rather
    than scanning every subscription — the same property a real MQTT
    broker's topic tree provides.
    """

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._ids = itertools.count(1)
        self._retained: Dict[str, Message] = {}
        self._pattern_by_id: Dict[int, List[str]] = {}
        self.published_count = 0
        self.delivered_count = 0
        self.handler_errors = 0
        self.last_handler_errors: List[str] = []

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------

    def subscribe(
        self,
        pattern: str,
        handler: MessageHandler,
        replay_retained: bool = False,
    ) -> int:
        """Register ``handler`` for topics matching ``pattern``.

        Returns a subscription id usable with :meth:`unsubscribe`.  With
        ``replay_retained``, retained messages matching the pattern are
        delivered immediately.
        """
        parts = split_topic(pattern)
        if _MULTI in parts[:-1]:
            raise TopicError(f"'#' must terminate the pattern: {pattern!r}")
        sub_id = next(self._ids)
        node = self._root
        is_multi = parts[-1] == _MULTI
        walk = parts[:-1] if is_multi else parts
        for seg in walk:
            node = node.children.setdefault(seg, _TrieNode())
        if is_multi:
            node.multi_handlers.append((sub_id, handler))
        else:
            node.handlers.append((sub_id, handler))
        self._pattern_by_id[sub_id] = parts
        if replay_retained:
            from repro.common.topics import topic_matches

            pat = "/" + "/".join(parts)
            for msg in list(self._retained.values()):
                if topic_matches(pat, msg.topic):
                    self._invoke(handler, msg.topic, msg.value, msg.timestamp)
        return sub_id

    def unsubscribe(self, sub_id: int) -> bool:
        """Remove a subscription; returns whether it existed."""
        parts = self._pattern_by_id.pop(sub_id, None)
        if parts is None:
            return False
        is_multi = parts[-1] == _MULTI
        walk = parts[:-1] if is_multi else parts
        node = self._root
        for seg in walk:
            node = node.children.get(seg)
            if node is None:
                return False
        bucket = node.multi_handlers if is_multi else node.handlers
        for i, (sid, _) in enumerate(bucket):
            if sid == sub_id:
                del bucket[i]
                return True
        return False

    def subscription_count(self) -> int:
        """Number of live subscriptions."""
        return len(self._pattern_by_id)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------

    def publish(
        self, topic: str, value: float, timestamp: int, retain: bool = False
    ) -> int:
        """Deliver a sample to all matching subscribers.

        Returns the number of handlers invoked.  With ``retain`` the
        message is stored and replayed to late subscribers that request
        retained delivery.
        """
        parts = split_topic(topic)
        if _SINGLE in parts or _MULTI in parts:
            # MQTT forbids wildcard characters in publish topics; letting
            # them through would alias the subscription trie's wildcard
            # slots.
            raise TopicError(f"wildcards not allowed in publish topic {topic!r}")
        if retain:
            self._retained[topic] = Message(topic, value, timestamp)
        # Fan-out runs arbitrary subscriber callbacks of unbounded cost
        # — the in-process stand-in for a network send.  Holding a lock
        # across it is the classic lock-across-I/O hazard (rule R002).
        hooks.note_blocking("Broker.publish (subscriber fan-out)")
        self.published_count += 1
        delivered = self._dispatch(self._root, parts, 0, topic, value, timestamp)
        self.delivered_count += delivered
        return delivered

    def publish_message(self, msg: Message, retain: bool = False) -> int:
        """Publish a prebuilt :class:`Message`."""
        return self.publish(msg.topic, msg.value, msg.timestamp, retain)

    def publish_batch(self, messages: List[Message]) -> int:
        """Deliver many samples in one call, in list order.

        Semantically identical to publishing each message individually
        (same per-message trie dispatch, same delivery order, same
        counters) but pays topic validation and the blocking-section
        bookkeeping once per batch instead of once per reading — the
        fan-out side of the operators' batched store path.
        """
        if not messages:
            return 0
        split = []
        for msg in messages:
            parts = split_topic(msg.topic)
            if _SINGLE in parts or _MULTI in parts:
                raise TopicError(
                    f"wildcards not allowed in publish topic {msg.topic!r}"
                )
            split.append(parts)
        hooks.note_blocking("Broker.publish_batch (subscriber fan-out)")
        delivered = 0
        for msg, parts in zip(messages, split):
            self.published_count += 1
            delivered += self._dispatch(
                self._root, parts, 0, msg.topic, msg.value, msg.timestamp
            )
        self.delivered_count += delivered
        return delivered

    def retained(self, topic: str) -> Optional[Message]:
        """The retained message on ``topic``, if any."""
        return self._retained.get(topic)

    def _invoke(self, handler, topic: str, value: float, timestamp: int) -> None:
        """Call one subscriber; a throwing handler must not poison the
        publisher or the remaining subscribers."""
        try:
            handler(topic, value, timestamp)
        except Exception as exc:
            self.handler_errors += 1
            self.last_handler_errors = (
                self.last_handler_errors + [f"{topic}: {exc}"]
            )[-16:]

    def _dispatch(
        self,
        node: _TrieNode,
        parts: List[str],
        depth: int,
        topic: str,
        value: float,
        timestamp: int,
    ) -> int:
        count = 0
        for _, handler in node.multi_handlers:
            self._invoke(handler, topic, value, timestamp)
            count += 1
        if depth == len(parts):
            for _, handler in node.handlers:
                self._invoke(handler, topic, value, timestamp)
                count += 1
            return count
        seg = parts[depth]
        child = node.children.get(seg)
        if child is not None:
            count += self._dispatch(child, parts, depth + 1, topic, value, timestamp)
        wild = node.children.get(_SINGLE)
        if wild is not None:
            count += self._dispatch(wild, parts, depth + 1, topic, value, timestamp)
        return count


#: Backpressure policies a bounded :class:`QueuedSubscriber` accepts.
QUEUE_POLICIES = ("drop-oldest", "drop-newest")


class QueuedSubscriber:
    """A subscriber that buffers messages for deferred draining.

    Collect Agents use this to decouple broker delivery from storage
    writes: ``attach`` registers the queue on a broker, and ``drain``
    hands the accumulated batch to a consumer.

    With ``maxlen`` the queue is bounded: at capacity, ``drop-oldest``
    evicts the head to admit the new message (monitoring's newest-data
    bias, the default) while ``drop-newest`` refuses the arrival.
    Either way the loss lands in ``dropped``, which the owning host
    exports as ``ingest_dropped_total``.  All queue state is guarded by
    a ``hooks.make_lock`` lock — under a WallClockDriver, ``handler``
    runs on publisher threads concurrently with the drain task.
    """

    def __init__(
        self, maxlen: Optional[int] = None, policy: str = "drop-oldest"
    ) -> None:
        if policy not in QUEUE_POLICIES:
            raise ConfigError(
                f"unknown queue policy {policy!r} "
                f"(expected one of {list(QUEUE_POLICIES)})"
            )
        if maxlen is not None and maxlen < 1:
            raise ConfigError(f"queue maxlen must be positive: {maxlen}")
        self._queue: Deque[Message] = deque()
        self.dropped = 0
        self._maxlen = maxlen
        self.policy = policy
        self._lock = hooks.make_lock("QueuedSubscriber")

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    def handler(self, topic: str, value: float, timestamp: int) -> None:
        """Broker-facing callback: enqueue the message."""
        with self._lock:
            if self._maxlen is not None and len(self._queue) >= self._maxlen:
                self.dropped += 1
                if self.policy == "drop-newest":
                    return
                self._queue.popleft()
            self._queue.append(Message(topic, value, timestamp))

    def attach(self, broker: Broker, pattern: str) -> int:
        """Subscribe this queue to ``pattern`` on ``broker``."""
        return broker.subscribe(pattern, self.handler)

    def drain(self, limit: Optional[int] = None) -> List[Message]:
        """Remove and return up to ``limit`` queued messages (all if None)."""
        with self._lock:
            n = (
                len(self._queue)
                if limit is None
                else min(limit, len(self._queue))
            )
            return [self._queue.popleft() for _ in range(n)]
