"""Sensors and sensor readings.

In DCDB a *sensor* is an atomic monitoring entity (power, temperature, a
CPU performance counter, ...) producing *readings*, each a numerical value
with a nanosecond timestamp.  Operator outputs are ordinary sensors too,
which is what makes analysis pipelines possible (Section IV-d).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

from repro.common.topics import normalize_topic, sensor_name


class SensorReading(NamedTuple):
    """A single timestamped sample.

    Attributes:
        timestamp: nanosecond epoch of the sample.
        value: the sampled value.  DCDB stores integers; we use float64
            throughout so derived metrics (CPI, ratios) are first-class.
    """

    timestamp: int
    value: float


@dataclass
class Sensor:
    """Metadata describing one monitored quantity.

    Attributes:
        topic: full slash-separated key, e.g. ``/r0/c1/s2/power``.
        unit: free-form measurement unit label (``W``, ``C``, ``#``).
        is_delta: whether readings are monotonic counters whose consumers
            want per-interval differences (e.g. ``cpu-cycles``).
        publish: whether the owning component forwards readings over MQTT
            (operator outputs may be cache-only when ``False``).
        is_operator_output: marks sensors produced by Wintermute operators
            rather than sampled from hardware.
    """

    topic: str
    unit: str = ""
    is_delta: bool = False
    publish: bool = True
    is_operator_output: bool = False

    def __post_init__(self) -> None:
        self.topic = normalize_topic(self.topic)
        # Memoized: .name sits on the per-reading output path of every
        # operator pass, and re-splitting the topic there dominates the
        # batched pipeline's fixed costs at scale.
        self._name = sensor_name(self.topic)

    @property
    def name(self) -> str:
        """The sensor's own name (last topic segment)."""
        return self._name

    def __hash__(self) -> int:
        return hash(self.topic)


@dataclass
class SensorSpec:
    """A declarative request for a sensor used in plugin configuration.

    Monitoring plugins declare the sensors they will produce with specs;
    the Pusher turns each spec into a concrete :class:`Sensor` bound to
    the component the plugin instance monitors.
    """

    name: str
    unit: str = ""
    is_delta: bool = False
    publish: bool = True
    params: dict = field(default_factory=dict)

    def bind(self, component_topic: str) -> Sensor:
        """Create the concrete sensor under ``component_topic``."""
        base = component_topic.rstrip("/")
        return Sensor(
            topic=f"{base}/{self.name}",
            unit=self.unit,
            is_delta=self.is_delta,
            publish=self.publish,
        )
