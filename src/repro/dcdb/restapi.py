"""RESTful control surface.

Every DCDB component exposes an HTTPS REST API used to introspect and
control it at runtime; Wintermute routes its ODA requests (start/stop/
reload plugins, trigger on-demand operators) through the same server
(Section V-A).  This reproduction models the API as an in-process router:
requests are method + path + query parameters, responses carry a status
code and a JSON-like dict body.  The routing semantics (longest-prefix
match, per-method tables) mirror what the C++ implementation's Boost
Beast server provides, without the network layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple


@dataclass
class RestRequest:
    """An API request: ``method`` is GET/PUT/POST/DELETE."""

    method: str
    path: str
    params: Dict[str, str] = field(default_factory=dict)

    def param(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """Fetch one query parameter."""
        return self.params.get(key, default)


@dataclass
class RestResponse:
    """An API response with an HTTP-like status code and a dict body."""

    status: int
    body: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the status is a 2xx success."""
        return 200 <= self.status < 300

    @staticmethod
    def json(body: dict, status: int = 200) -> "RestResponse":
        """Build a success response."""
        return RestResponse(status, body)

    @staticmethod
    def error(message: str, status: int = 400) -> "RestResponse":
        """Build an error response."""
        return RestResponse(status, {"error": message})


RouteHandler = Callable[[RestRequest], RestResponse]


class RestApi:
    """Prefix-routed request dispatcher.

    Handlers register under a (method, path-prefix) pair; dispatch picks
    the longest registered prefix matching the request path, so e.g.
    ``/analytics/operators`` wins over ``/analytics`` for requests to
    ``/analytics/operators/regressor``.
    """

    def __init__(self) -> None:
        # method -> list of (prefix, handler), kept sorted longest-first.
        self._routes: Dict[str, List[Tuple[str, RouteHandler]]] = {}

    def register(self, method: str, prefix: str, handler: RouteHandler) -> None:
        """Register ``handler`` for paths starting with ``prefix``."""
        method = method.upper()
        prefix = "/" + prefix.strip("/")
        routes = self._routes.setdefault(method, [])
        routes.append((prefix, handler))
        routes.sort(key=lambda r: len(r[0]), reverse=True)

    def dispatch(self, request: RestRequest) -> RestResponse:
        """Route a request; 404 when no prefix matches, 405 for a known
        path under a different method."""
        path = "/" + request.path.strip("/")
        routes = self._routes.get(request.method.upper(), [])
        for prefix, handler in routes:
            if path == prefix or path.startswith(prefix + "/"):
                return handler(request)
        for other_method, other_routes in self._routes.items():
            if other_method == request.method.upper():
                continue
            for prefix, _ in other_routes:
                if path == prefix or path.startswith(prefix + "/"):
                    return RestResponse.error(
                        f"method {request.method} not allowed on {path}", 405
                    )
        return RestResponse.error(f"no route for {path}", 404)

    # Convenience verbs -------------------------------------------------

    def get(self, path: str, **params: str) -> RestResponse:
        """Issue a GET request."""
        return self.dispatch(RestRequest("GET", path, dict(params)))

    def put(self, path: str, **params: str) -> RestResponse:
        """Issue a PUT request."""
        return self.dispatch(RestRequest("PUT", path, dict(params)))

    def post(self, path: str, **params: str) -> RestResponse:
        """Issue a POST request."""
        return self.dispatch(RestRequest("POST", path, dict(params)))

    def delete(self, path: str, **params: str) -> RestResponse:
        """Issue a DELETE request."""
        return self.dispatch(RestRequest("DELETE", path, dict(params)))
