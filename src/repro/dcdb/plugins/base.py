"""Monitoring plugin interface.

A monitoring plugin declares the sensors it produces and implements one
``sample`` call invoked by the Pusher at the plugin's interval.  Plugins
are bound to a *component* (a node path) at construction, and their
sensor topics live under that component — exactly how DCDB's plugin
configuration attaches e.g. a perfevent group to each CPU.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Sequence

from repro.common.timeutil import NS_PER_SEC
from repro.dcdb.sensor import Sensor


class PluginSample(NamedTuple):
    """One sampled value paired with its sensor."""

    sensor: Sensor
    value: float


class MonitoringPlugin:
    """Base class for Pusher monitoring plugins.

    Args:
        name: plugin name (used in task names and the REST API).
        interval_ns: sampling period.  The paper's production setup runs
            most plugins at 1 s; the power-prediction case study samples
            at 250 ms.
    """

    def __init__(self, name: str, interval_ns: int = NS_PER_SEC) -> None:
        if interval_ns <= 0:
            raise ValueError(f"sampling interval must be positive: {interval_ns}")
        self.name = name
        self.interval_ns = int(interval_ns)
        self._sensors: List[Sensor] = []

    def _register(self, sensor: Sensor) -> Sensor:
        """Record a produced sensor; subclasses call this in __init__."""
        self._sensors.append(sensor)
        return sensor

    def sensors(self) -> Sequence[Sensor]:
        """All sensors this plugin produces."""
        return tuple(self._sensors)

    def sample(self, ts: int) -> Iterable[PluginSample]:
        """Produce one reading per sensor at time ``ts``."""
        raise NotImplementedError
