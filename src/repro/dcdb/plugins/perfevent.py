"""Perfevent monitoring plugin (synthetic).

Mirrors DCDB's perfevent plugin: per-CPU hardware counters (cycles,
instructions, cache misses/references, flops, vector ops) sampled as
monotonic values.  Readings come from the cluster simulator, which plays
the role of the kernel perf interface.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.common.timeutil import NS_PER_SEC
from repro.dcdb.plugins.base import MonitoringPlugin, PluginSample
from repro.dcdb.sensor import Sensor
from repro.simulator.engine import CPU_COUNTERS, ClusterSimulator


class PerfeventPlugin(MonitoringPlugin):
    """Per-CPU counter sampling for one compute node.

    Args:
        simulator: the hardware stand-in.
        node_path: which node's CPUs to sample.
        counters: subset of :data:`CPU_COUNTERS` to expose (all by
            default).
        interval_ns: sampling period.
    """

    def __init__(
        self,
        simulator: ClusterSimulator,
        node_path: str,
        counters: Sequence[str] = CPU_COUNTERS,
        interval_ns: int = NS_PER_SEC,
    ) -> None:
        super().__init__("perfevent", interval_ns)
        unknown = set(counters) - set(CPU_COUNTERS)
        if unknown:
            raise ValueError(f"unknown perfevent counters: {sorted(unknown)}")
        self._sim = simulator
        self._node_path = node_path
        n_cpus = simulator.spec.cpus_per_node
        self._bindings: List[Tuple[int, str, Sensor]] = []
        for cpu in range(n_cpus):
            for counter in counters:
                sensor = self._register(
                    Sensor(
                        topic=f"{node_path}/cpu{cpu:02d}/{counter}",
                        unit="#",
                        is_delta=True,
                    )
                )
                self._bindings.append((cpu, counter, sensor))
        self._counter_names = list(counters)

    def sample(self, ts: int) -> Iterable[PluginSample]:
        # One vectorised advance per node; reads below are array lookups.
        per_counter = {
            name: self._sim.read_cpu_counters(self._node_path, name, ts)
            for name in self._counter_names
        }
        for cpu, counter, sensor in self._bindings:
            yield PluginSample(sensor, float(per_counter[counter][cpu]))
