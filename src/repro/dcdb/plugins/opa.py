"""Omni-Path (OPA) monitoring plugin (synthetic).

Mirrors DCDB's opa plugin: per-node fabric port counters (transmitted
and received bytes), monotonic like the real port counters.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.common.timeutil import NS_PER_SEC
from repro.dcdb.plugins.base import MonitoringPlugin, PluginSample
from repro.dcdb.sensor import Sensor
from repro.simulator.engine import ClusterSimulator

_SENSORS: Tuple[Tuple[str, str], ...] = (
    ("xmit-bytes", "B"),
    ("rcv-bytes", "B"),
)

#: Sensor names this plugin attaches to each node (static-analysis view).
SENSOR_NAMES: Tuple[str, ...] = tuple(name for name, _ in _SENSORS)

#: name -> physical unit, for the static dataflow analyzer.
SENSOR_UNITS = dict(_SENSORS)


class OpaPlugin(MonitoringPlugin):
    """Fabric counter sampling for one compute node."""

    def __init__(
        self,
        simulator: ClusterSimulator,
        node_path: str,
        interval_ns: int = NS_PER_SEC,
    ) -> None:
        super().__init__("opa", interval_ns)
        self._sim = simulator
        self._node_path = node_path
        self._bindings: List[Tuple[str, Sensor]] = []
        for name, unit in _SENSORS:
            sensor = self._register(
                Sensor(topic=f"{node_path}/{name}", unit=unit, is_delta=True)
            )
            self._bindings.append((name, sensor))

    def sample(self, ts: int) -> Iterable[PluginSample]:
        for name, sensor in self._bindings:
            yield PluginSample(
                sensor, self._sim.read_node(self._node_path, name, ts)
            )
