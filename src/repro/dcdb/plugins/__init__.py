"""Monitoring plugins for the Pusher.

Each plugin samples a family of sensors on one monitored component,
mirroring the plugins the paper's deployment runs on CooLMUC-3
(perfevent, sysFS, ProcFS and OPA) plus the ``tester`` plugin used for
the overhead study of Section VI-A.  All hardware-facing plugins read
from the cluster simulator instead of real interfaces; the sampling code
path (plugin -> cache -> MQTT) is identical to production.
"""

from repro.dcdb.plugins.base import MonitoringPlugin, PluginSample
from repro.dcdb.plugins.tester import TesterMonitoringPlugin
from repro.dcdb.plugins.perfevent import PerfeventPlugin
from repro.dcdb.plugins.sysfs import SysfsPlugin
from repro.dcdb.plugins.procfs import ProcfsPlugin
from repro.dcdb.plugins.opa import OpaPlugin

__all__ = [
    "MonitoringPlugin",
    "PluginSample",
    "TesterMonitoringPlugin",
    "PerfeventPlugin",
    "SysfsPlugin",
    "ProcfsPlugin",
    "OpaPlugin",
]
