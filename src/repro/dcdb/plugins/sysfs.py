"""SysFS monitoring plugin (synthetic).

Mirrors DCDB's sysfs plugin on node-level hardware sensors: whole-node
power at the power supply, node temperature, cumulative energy and core
frequency.  These are the signals the power-prediction (Fig 6) and
clustering (Fig 8) case studies consume.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.common.timeutil import NS_PER_SEC
from repro.dcdb.plugins.base import MonitoringPlugin, PluginSample
from repro.dcdb.sensor import Sensor
from repro.simulator.engine import ClusterSimulator

_SENSORS: Tuple[Tuple[str, str, bool], ...] = (
    # (name, unit, is_delta)
    ("power", "W", False),
    ("temp", "C", False),
    ("energy", "J", True),
    ("freq", "Hz", False),
)

#: Sensor names this plugin attaches to each node (static-analysis view).
SENSOR_NAMES: Tuple[str, ...] = tuple(name for name, _, _ in _SENSORS)

#: name -> physical unit, for the static dataflow analyzer.
SENSOR_UNITS = {name: unit for name, unit, _ in _SENSORS}


class SysfsPlugin(MonitoringPlugin):
    """Node-level electrical/thermal sampling for one compute node."""

    def __init__(
        self,
        simulator: ClusterSimulator,
        node_path: str,
        interval_ns: int = NS_PER_SEC,
    ) -> None:
        super().__init__("sysfs", interval_ns)
        self._sim = simulator
        self._node_path = node_path
        self._bindings: List[Tuple[str, Sensor]] = []
        for name, unit, is_delta in _SENSORS:
            sensor = self._register(
                Sensor(topic=f"{node_path}/{name}", unit=unit, is_delta=is_delta)
            )
            self._bindings.append((name, sensor))

    def sample(self, ts: int) -> Iterable[PluginSample]:
        for name, sensor in self._bindings:
            yield PluginSample(
                sensor, self._sim.read_node(self._node_path, name, ts)
            )
