"""Tester monitoring plugin.

Reproduces the monitoring side of the paper's overhead study (Section
VI-A): "a tester plugin producing a total of 1000 monotonic sensors with
negligible overhead, so as to provide a reliable baseline".  Each sensor
is a counter incremented by one per sample.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.common.timeutil import NS_PER_SEC
from repro.dcdb.plugins.base import MonitoringPlugin, PluginSample
from repro.dcdb.sensor import Sensor


class TesterMonitoringPlugin(MonitoringPlugin):
    """Produces ``n_sensors`` monotonic counters under a component path.

    Args:
        component_topic: path under which the sensors live.
        n_sensors: number of counters (the paper uses 1000).
        interval_ns: sampling period (the paper uses 1 s).
        publish: whether readings go out over MQTT as well as into the
            local cache.
    """

    __test__ = False  # not a pytest test class despite the name

    def __init__(
        self,
        component_topic: str,
        n_sensors: int = 1000,
        interval_ns: int = NS_PER_SEC,
        publish: bool = True,
    ) -> None:
        super().__init__("tester", interval_ns)
        if n_sensors <= 0:
            raise ValueError(f"n_sensors must be positive: {n_sensors}")
        base = component_topic.rstrip("/")
        self._counters: List[int] = [0] * n_sensors
        for i in range(n_sensors):
            self._register(
                Sensor(
                    topic=f"{base}/tester{i:04d}",
                    unit="#",
                    is_delta=True,
                    publish=publish,
                )
            )

    def sample(self, ts: int) -> Iterable[PluginSample]:
        for i, sensor in enumerate(self._sensors):
            self._counters[i] += 1
            yield PluginSample(sensor, float(self._counters[i]))
