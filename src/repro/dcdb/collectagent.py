"""The DCDB Collect Agent.

Collect Agents are the data brokers of DCDB: they receive all sensor
traffic the Pushers publish over MQTT, keep their own sensor caches for
fast in-memory access, and forward readings to the storage backend.
Wintermute operators hosted in a Collect Agent see the *entire* system's
sensor space — data comes from the local caches when possible and from
the storage backend otherwise (Section IV-a), which is exactly the
lookup order the Query Engine implements.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.common.timeutil import NS_PER_SEC
from repro.dcdb.cache import SensorCache
from repro.dcdb.mqtt import Broker, Message, QueuedSubscriber
from repro.dcdb.restapi import RestApi, RestResponse
from repro.dcdb.sensor import Sensor
from repro.dcdb.storage import StorageBackend
from repro.simulator.clock import TaskScheduler
from repro.telemetry import MetricRegistry, register_metrics_route


class CollectAgent:
    """System-level data broker and analytics host.

    Args:
        name: host identifier.
        broker: MQTT broker to subscribe on.
        scheduler: shared task scheduler (drives queue drains).
        storage: storage backend readings are persisted to.
        cache_window_ns: retention of the agent-side sensor caches.
        drain_interval_ns: how often the subscription queue is flushed
            to caches and storage.
        subscribe_pattern: topic filter; ``/#`` (everything) by default.
        republish_outputs: whether operator outputs written on this agent
            are also published over MQTT.  Off by default: in a Collect
            Agent, outputs are "written to the Storage Backend" directly
            (Section IV-a) — and with a catch-all subscription a
            republish would loop straight back into the agent's own
            ingest queue, duplicating every stored reading.
        ingest_queue_capacity: bound of the MQTT ingest queue (``None``
            keeps it unbounded).  A bounded queue applies backpressure
            instead of growing without limit under bursty ingest.
        ingest_policy: what a full ingest queue does with an arrival —
            ``drop-oldest`` (default) or ``drop-newest``; either way the
            loss is exported as ``ingest_dropped_total``.
    """

    def __init__(
        self,
        name: str,
        broker: Broker,
        scheduler: TaskScheduler,
        storage: Optional[StorageBackend] = None,
        cache_window_ns: int = 180 * NS_PER_SEC,
        drain_interval_ns: int = NS_PER_SEC,
        subscribe_pattern: str = "/#",
        republish_outputs: bool = False,
        ingest_queue_capacity: Optional[int] = None,
        ingest_policy: str = "drop-oldest",
    ) -> None:
        self.republish_outputs = republish_outputs
        self.name = name
        self.broker = broker
        self.scheduler = scheduler
        self._storage = storage if storage is not None else StorageBackend()
        self.cache_window_ns = int(cache_window_ns)
        self.caches: Dict[str, SensorCache] = {}
        self.sensors: Dict[str, Sensor] = {}
        #: Smallest observed inter-arrival gap per remote topic; drives
        #: ingest cache sizing (see :meth:`_observe_arrival`).
        self._gap_ns: Dict[str, int] = {}
        self.rest = RestApi()
        self.telemetry = MetricRegistry()
        self._m_forwarded = self.telemetry.counter("forwarded_readings_total")
        self._m_drain_latency = self.telemetry.histogram("drain_latency_ns")
        self._m_ingest_dropped = self.telemetry.counter("ingest_dropped_total")
        self._dropped_synced = 0
        self._register_gauges()
        self.analytics: Optional[object] = None
        self._queue = QueuedSubscriber(
            maxlen=ingest_queue_capacity, policy=ingest_policy
        )
        self._queue.attach(broker, subscribe_pattern)
        self._drain_task = scheduler.add_callback(
            f"{name}:drain", self._drain, int(drain_interval_ns)
        )
        # Storage TTL maintenance: Cassandra expires rows server-side;
        # the in-memory backend needs a periodic sweep instead.
        if self._storage.ttl_ns > 0:
            self._ttl_task = scheduler.add_callback(
                f"{name}:ttl",
                lambda ts: self._storage.expire(ts),
                max(NS_PER_SEC, self._storage.ttl_ns // 10),
            )
        # Tiered backends additionally run flush/rollup/retention sweeps
        # (the Cassandra-compaction equivalent) on their own cadence.
        maintain = getattr(self._storage, "maintain", None)
        if callable(maintain):
            self._maintenance_task = scheduler.add_callback(
                f"{name}:storage-maintenance",
                maintain,
                int(
                    getattr(
                        self._storage,
                        "maintenance_interval_ns",
                        30 * NS_PER_SEC,
                    )
                ),
            )
        self._register_routes()

    def _register_gauges(self) -> None:
        """Collection-time gauges: queue depth, cache occupancy, storage
        footprint.  Evaluated by the /metrics scraper, not the hot path."""
        self.telemetry.gauge("ingest_queue_depth", fn=lambda: len(self._queue))
        self.telemetry.gauge(
            "cache_sensor_count", fn=lambda: len(self.caches)
        )
        self.telemetry.gauge(
            "cache_occupancy_readings",
            fn=lambda: sum(len(c) for c in self.caches.values()),
        )
        self.telemetry.gauge(
            "cache_capacity_readings",
            fn=lambda: sum(c.capacity for c in self.caches.values()),
        )
        self.telemetry.gauge(
            "cache_memory_bytes",
            fn=lambda: sum(c.memory_bytes() for c in self.caches.values()),
        )
        self.telemetry.gauge(
            "cache_stale_drops",
            fn=lambda: sum(c.stale_drops for c in self.caches.values()),
        )
        self.telemetry.gauge(
            "storage_stored_readings",
            fn=lambda: self._storage.total_readings(),
        )
        if hasattr(self._storage, "tier_stats"):
            storage = self._storage  # tiered backend: per-tier visibility
            self.telemetry.gauge(
                "storage_disk_bytes", fn=lambda: storage.disk_bytes()
            )
            self.telemetry.gauge(
                "storage_segments",
                fn=lambda: len(storage.store.segments),
            )
            self.telemetry.gauge(
                "storage_flushes", fn=lambda: storage.flush_count
            )
            self.telemetry.gauge(
                "storage_rollup_compactions",
                fn=lambda: storage.rollup_compactions,
            )
            for tier in ("memory", "segment", "rollup"):
                self.telemetry.gauge(
                    "storage_tier_hits",
                    fn=lambda t=tier: storage.tier_hits[t],
                    tier=tier,
                )

    @property
    def forwarded_count(self) -> int:
        """Readings drained from MQTT into caches + storage."""
        return self._m_forwarded.value

    @property
    def ingest_dropped(self) -> int:
        """Messages lost to ingest-queue backpressure (telemetry view)."""
        # Sync pending queue-side drops so callers between drains see
        # the live number, not the last drain's snapshot.
        dropped = self._queue.dropped
        if dropped != self._dropped_synced:
            self._m_ingest_dropped.inc(dropped - self._dropped_synced)
            self._dropped_synced = dropped
        return self._m_ingest_dropped.value

    # ------------------------------------------------------------------
    # Ingest path
    # ------------------------------------------------------------------

    #: Sizing slack mirroring ``SensorCache.for_duration`` (20%).
    _SIZING_SLACK_NUM, _SIZING_SLACK_DEN = 12, 10
    #: Per-topic growth ceiling: two adjacent timestamps 1 ns apart must
    #: not balloon one cache to the whole window divided by a nanosecond.
    _MAX_INGEST_CAPACITY = 1_000_000

    def _cache_for_ingest(
        self, topic: str, ts: Optional[int] = None
    ) -> SensorCache:
        cache = self.caches.get(topic)
        if cache is None:
            # Interval is unknown for remote sensors; a count-sized cache
            # with binary-search relative fallback keeps semantics right.
            # Start with the 1 Hz guess and grow from the observed
            # inter-arrival gap — a 10 Hz sensor must still retain its
            # whole window, not a tenth of it.
            cache = self.caches[topic] = SensorCache(
                capacity=max(2, self.cache_window_ns // NS_PER_SEC + 1)
            )
        if ts is not None:
            self._observe_arrival(topic, cache, ts)
        return cache

    def _observe_arrival(
        self, topic: str, cache: SensorCache, ts: int
    ) -> None:
        """Track a topic's cadence and grow its cache to the window.

        The retention window is a time contract; the ring is sized in
        readings.  Whenever a smaller positive inter-arrival gap is
        observed, the implied reading count for ``cache_window_ns`` is
        recomputed (with the same 20% slack ``for_duration`` applies)
        and the cache grown in place, preserving its contents.
        """
        prev = cache.latest()
        if prev is None:
            return
        gap = ts - prev.timestamp
        if gap <= 0:
            return  # duplicate or stale arrival; no cadence information
        known = self._gap_ns.get(topic)
        if known is not None and gap >= known:
            return
        self._gap_ns[topic] = gap
        needed = (
            self.cache_window_ns * self._SIZING_SLACK_NUM
        ) // (gap * self._SIZING_SLACK_DEN) + 2
        needed = min(max(2, needed), self._MAX_INGEST_CAPACITY)
        if needed > cache.capacity:
            cache.resize(needed)

    def _drain(self, ts: int) -> None:
        """Flush queued MQTT messages into caches and storage."""
        t0 = time.perf_counter_ns()
        n = 0
        for msg in self._queue.drain():
            cache = self._cache_for_ingest(msg.topic, msg.timestamp)
            cache.store(msg.timestamp, msg.value)
            self._storage.insert(msg.topic, msg.timestamp, msg.value)
            n += 1
        if n:
            self._m_forwarded.inc(n)
        dropped = self._queue.dropped
        if dropped != self._dropped_synced:
            self._m_ingest_dropped.inc(dropped - self._dropped_synced)
            self._dropped_synced = dropped
        self._m_drain_latency.observe(time.perf_counter_ns() - t0)

    def flush(self, ts: Optional[int] = None) -> None:
        """Drain immediately (used by on-demand REST handlers/tests)."""
        self._drain(ts if ts is not None else self.scheduler.clock.now)

    # ------------------------------------------------------------------
    # Host interface for Wintermute
    # ------------------------------------------------------------------

    def store_reading(self, sensor: Sensor, ts: int, value: float) -> None:
        """Store an operator output: cache + storage (+ MQTT if published).

        In a Collect Agent, operator outputs are also written to the
        Storage Backend (Section IV-a).
        """
        self.sensors[sensor.topic] = sensor
        self._cache_for_ingest(sensor.topic, ts).store(ts, value)
        self._storage.insert(sensor.topic, ts, value)
        if sensor.publish and self.republish_outputs:
            self.broker.publish(sensor.topic, value, ts)

    def store_readings_batch(self, ts, readings) -> None:
        """Store a whole pass's operator outputs in one call.

        ``readings`` is a sequence of ``(sensor, value)`` pairs sharing
        one timestamp; cache, storage and republish behaviour match
        per-reading :meth:`store_reading`, with MQTT republishes (when
        enabled) collapsed into one broker batch.
        """
        to_publish = []
        for sensor, value in readings:
            self.sensors[sensor.topic] = sensor
            self._cache_for_ingest(sensor.topic, ts).store(ts, value)
            self._storage.insert(sensor.topic, ts, value)
            if sensor.publish and self.republish_outputs:
                to_publish.append(Message(sensor.topic, value, ts))
        if to_publish:
            self.broker.publish_batch(to_publish)

    def cache_for(self, topic: str) -> Optional[SensorCache]:
        """The agent-side cache for ``topic``, if any traffic was seen."""
        return self.caches.get(topic)

    def sensor_topics(self) -> List[str]:
        """All topics known to this agent (cached or stored)."""
        topics = set(self.caches.keys())
        topics.update(self._storage.topics())
        return sorted(topics)

    @property
    def storage(self) -> StorageBackend:
        """The storage backend; the Query Engine's fallback source."""
        return self._storage

    def attach_analytics(self, manager) -> None:
        """Attach a Wintermute OperatorManager to this host."""
        self.analytics = manager
        manager.bind_host(self)

    # ------------------------------------------------------------------
    # REST API
    # ------------------------------------------------------------------

    def _register_routes(self) -> None:
        self.rest.register("GET", "/sensors", self._route_sensors)
        self.rest.register("GET", "/stats", self._route_stats)
        register_metrics_route(self.rest, self.telemetry)

    def _route_sensors(self, request) -> RestResponse:
        return RestResponse.json({"sensors": self.sensor_topics()})

    def _route_stats(self, request) -> RestResponse:
        return RestResponse.json(
            {
                "forwarded": self.forwarded_count,
                "queued": len(self._queue),
                "ingest_dropped": self.ingest_dropped,
                "stored_readings": self._storage.total_readings(),
            }
        )
