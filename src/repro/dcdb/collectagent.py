"""The DCDB Collect Agent.

Collect Agents are the data brokers of DCDB: they receive all sensor
traffic the Pushers publish over MQTT, keep their own sensor caches for
fast in-memory access, and forward readings to the storage backend.
Wintermute operators hosted in a Collect Agent see the *entire* system's
sensor space — data comes from the local caches when possible and from
the storage backend otherwise (Section IV-a), which is exactly the
lookup order the Query Engine implements.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.common.timeutil import NS_PER_SEC
from repro.dcdb.cache import SensorCache
from repro.dcdb.mqtt import Broker, Message, QueuedSubscriber
from repro.dcdb.restapi import RestApi, RestResponse
from repro.dcdb.sensor import Sensor
from repro.dcdb.storage import StorageBackend
from repro.simulator.clock import TaskScheduler
from repro.telemetry import MetricRegistry, register_metrics_route


class CollectAgent:
    """System-level data broker and analytics host.

    Args:
        name: host identifier.
        broker: MQTT broker to subscribe on.
        scheduler: shared task scheduler (drives queue drains).
        storage: storage backend readings are persisted to.
        cache_window_ns: retention of the agent-side sensor caches.
        drain_interval_ns: how often the subscription queue is flushed
            to caches and storage.
        subscribe_pattern: topic filter; ``/#`` (everything) by default.
        republish_outputs: whether operator outputs written on this agent
            are also published over MQTT.  Off by default: in a Collect
            Agent, outputs are "written to the Storage Backend" directly
            (Section IV-a) — and with a catch-all subscription a
            republish would loop straight back into the agent's own
            ingest queue, duplicating every stored reading.
    """

    def __init__(
        self,
        name: str,
        broker: Broker,
        scheduler: TaskScheduler,
        storage: Optional[StorageBackend] = None,
        cache_window_ns: int = 180 * NS_PER_SEC,
        drain_interval_ns: int = NS_PER_SEC,
        subscribe_pattern: str = "/#",
        republish_outputs: bool = False,
    ) -> None:
        self.republish_outputs = republish_outputs
        self.name = name
        self.broker = broker
        self.scheduler = scheduler
        self._storage = storage if storage is not None else StorageBackend()
        self.cache_window_ns = int(cache_window_ns)
        self.caches: Dict[str, SensorCache] = {}
        self.sensors: Dict[str, Sensor] = {}
        self.rest = RestApi()
        self.telemetry = MetricRegistry()
        self._m_forwarded = self.telemetry.counter("forwarded_readings_total")
        self._m_drain_latency = self.telemetry.histogram("drain_latency_ns")
        self._register_gauges()
        self.analytics: Optional[object] = None
        self._queue = QueuedSubscriber()
        self._queue.attach(broker, subscribe_pattern)
        self._drain_task = scheduler.add_callback(
            f"{name}:drain", self._drain, int(drain_interval_ns)
        )
        # Storage TTL maintenance: Cassandra expires rows server-side;
        # the in-memory backend needs a periodic sweep instead.
        if self._storage.ttl_ns > 0:
            self._ttl_task = scheduler.add_callback(
                f"{name}:ttl",
                lambda ts: self._storage.expire(ts),
                max(NS_PER_SEC, self._storage.ttl_ns // 10),
            )
        self._register_routes()

    def _register_gauges(self) -> None:
        """Collection-time gauges: queue depth, cache occupancy, storage
        footprint.  Evaluated by the /metrics scraper, not the hot path."""
        self.telemetry.gauge("ingest_queue_depth", fn=lambda: len(self._queue))
        self.telemetry.gauge(
            "cache_sensor_count", fn=lambda: len(self.caches)
        )
        self.telemetry.gauge(
            "cache_occupancy_readings",
            fn=lambda: sum(len(c) for c in self.caches.values()),
        )
        self.telemetry.gauge(
            "cache_capacity_readings",
            fn=lambda: sum(c.capacity for c in self.caches.values()),
        )
        self.telemetry.gauge(
            "cache_memory_bytes",
            fn=lambda: sum(c.memory_bytes() for c in self.caches.values()),
        )
        self.telemetry.gauge(
            "cache_stale_drops",
            fn=lambda: sum(c.stale_drops for c in self.caches.values()),
        )
        self.telemetry.gauge(
            "storage_stored_readings",
            fn=lambda: self._storage.total_readings(),
        )

    @property
    def forwarded_count(self) -> int:
        """Readings drained from MQTT into caches + storage."""
        return self._m_forwarded.value

    # ------------------------------------------------------------------
    # Ingest path
    # ------------------------------------------------------------------

    def _cache_for_ingest(self, topic: str) -> SensorCache:
        cache = self.caches.get(topic)
        if cache is None:
            # Interval is unknown for remote sensors; a count-sized cache
            # with binary-search relative fallback keeps semantics right.
            cache = self.caches[topic] = SensorCache(
                capacity=max(2, self.cache_window_ns // NS_PER_SEC + 1)
            )
        return cache

    def _drain(self, ts: int) -> None:
        """Flush queued MQTT messages into caches and storage."""
        t0 = time.perf_counter_ns()
        n = 0
        for msg in self._queue.drain():
            self._cache_for_ingest(msg.topic).store(msg.timestamp, msg.value)
            self._storage.insert(msg.topic, msg.timestamp, msg.value)
            n += 1
        if n:
            self._m_forwarded.inc(n)
        self._m_drain_latency.observe(time.perf_counter_ns() - t0)

    def flush(self, ts: Optional[int] = None) -> None:
        """Drain immediately (used by on-demand REST handlers/tests)."""
        self._drain(ts if ts is not None else self.scheduler.clock.now)

    # ------------------------------------------------------------------
    # Host interface for Wintermute
    # ------------------------------------------------------------------

    def store_reading(self, sensor: Sensor, ts: int, value: float) -> None:
        """Store an operator output: cache + storage (+ MQTT if published).

        In a Collect Agent, operator outputs are also written to the
        Storage Backend (Section IV-a).
        """
        self.sensors[sensor.topic] = sensor
        self._cache_for_ingest(sensor.topic).store(ts, value)
        self._storage.insert(sensor.topic, ts, value)
        if sensor.publish and self.republish_outputs:
            self.broker.publish(sensor.topic, value, ts)

    def store_readings_batch(self, ts, readings) -> None:
        """Store a whole pass's operator outputs in one call.

        ``readings`` is a sequence of ``(sensor, value)`` pairs sharing
        one timestamp; cache, storage and republish behaviour match
        per-reading :meth:`store_reading`, with MQTT republishes (when
        enabled) collapsed into one broker batch.
        """
        to_publish = []
        for sensor, value in readings:
            self.sensors[sensor.topic] = sensor
            self._cache_for_ingest(sensor.topic).store(ts, value)
            self._storage.insert(sensor.topic, ts, value)
            if sensor.publish and self.republish_outputs:
                to_publish.append(Message(sensor.topic, value, ts))
        if to_publish:
            self.broker.publish_batch(to_publish)

    def cache_for(self, topic: str) -> Optional[SensorCache]:
        """The agent-side cache for ``topic``, if any traffic was seen."""
        return self.caches.get(topic)

    def sensor_topics(self) -> List[str]:
        """All topics known to this agent (cached or stored)."""
        topics = set(self.caches.keys())
        topics.update(self._storage.topics())
        return sorted(topics)

    @property
    def storage(self) -> StorageBackend:
        """The storage backend; the Query Engine's fallback source."""
        return self._storage

    def attach_analytics(self, manager) -> None:
        """Attach a Wintermute OperatorManager to this host."""
        self.analytics = manager
        manager.bind_host(self)

    # ------------------------------------------------------------------
    # REST API
    # ------------------------------------------------------------------

    def _register_routes(self) -> None:
        self.rest.register("GET", "/sensors", self._route_sensors)
        self.rest.register("GET", "/stats", self._route_stats)
        register_metrics_route(self.rest, self.telemetry)

    def _route_sensors(self, request) -> RestResponse:
        return RestResponse.json({"sensors": self.sensor_topics()})

    def _route_stats(self, request) -> RestResponse:
        return RestResponse.json(
            {
                "forwarded": self.forwarded_count,
                "queued": len(self._queue),
                "stored_readings": self._storage.total_readings(),
            }
        )
