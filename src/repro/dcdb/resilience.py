"""Store-and-forward primitives for the Pusher publish path.

Production ODA deployments live or die on surviving management-network
outages: a Pusher whose link to the Collect Agent is down must buffer
readings locally and re-publish them on reconnect, not lose them.  This
module provides the two building blocks the Pusher composes:

- :class:`SpillQueue` — a bounded FIFO of refused messages with a
  configurable overflow policy (``drop-oldest`` by default, matching the
  "newest data wins" bias of monitoring pipelines).
- :class:`ExponentialBackoff` — deterministic, seeded retry pacing with
  multiplicative growth and uniform jitter, so a thousand Pushers
  reconnecting after the same outage do not stampede the broker in
  lockstep.

Both are plain data structures: locking is the owner's responsibility
(the Pusher guards its spill state through the ``hooks.make_lock``
sanitizer seam).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.common.errors import ConfigError
from repro.dcdb.mqtt import Message

#: Overflow policies a :class:`SpillQueue` accepts.
SPILL_POLICIES = ("drop-oldest", "drop-newest")


class SpillQueue:
    """A bounded FIFO buffer of refused publishes.

    Args:
        capacity: maximum number of buffered messages (> 0).
        policy: what happens when a message arrives at capacity —
            ``drop-oldest`` evicts the head to admit it (default),
            ``drop-newest`` refuses the new message instead.
    """

    __slots__ = ("_queue", "_capacity", "policy")

    def __init__(self, capacity: int = 8192, policy: str = "drop-oldest"):
        if capacity <= 0:
            raise ConfigError(f"spill capacity must be positive: {capacity}")
        if policy not in SPILL_POLICIES:
            raise ConfigError(
                f"unknown spill policy {policy!r} "
                f"(expected one of {list(SPILL_POLICIES)})"
            )
        self._queue: Deque[Message] = deque()
        self._capacity = int(capacity)
        self.policy = policy

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def capacity(self) -> int:
        return self._capacity

    def append(self, msg: Message) -> Optional[Message]:
        """Buffer one message; returns the message dropped to make room.

        ``None`` means the message was admitted without loss.  Under
        ``drop-newest`` the returned message may be ``msg`` itself
        (refused outright, never buffered).
        """
        if len(self._queue) >= self._capacity:
            if self.policy == "drop-newest":
                return msg
            dropped = self._queue.popleft()
            self._queue.append(msg)
            return dropped
        self._queue.append(msg)
        return None

    def appendleft(self, msg: Message) -> None:
        """Put a message back at the head (failed replay re-queue)."""
        self._queue.appendleft(msg)

    def popleft(self) -> Optional[Message]:
        """Remove and return the oldest buffered message, or ``None``."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def peek(self) -> Optional[Message]:
        """The oldest buffered message without removing it."""
        return self._queue[0] if self._queue else None

    def clear(self) -> None:
        self._queue.clear()


class ExponentialBackoff:
    """Deterministic retry pacing: exponential growth plus jitter.

    Args:
        base_ns: first retry delay.
        max_ns: delay ceiling (growth saturates here).
        factor: multiplicative growth per attempt.
        jitter: uniform relative jitter (0.2 = +/- 20%) applied to every
            delay so reconnecting producers desynchronize.
        seed: deterministic randomness for the jitter samples.
    """

    def __init__(
        self,
        base_ns: int,
        max_ns: int,
        factor: float = 2.0,
        jitter: float = 0.2,
        seed: int = 0,
    ):
        if base_ns <= 0 or max_ns < base_ns:
            raise ConfigError(
                f"backoff needs 0 < base_ns <= max_ns, "
                f"got base={base_ns} max={max_ns}"
            )
        if factor < 1.0:
            raise ConfigError(f"backoff factor must be >= 1: {factor}")
        if not (0.0 <= jitter < 1.0):
            raise ConfigError(f"backoff jitter must be in [0, 1): {jitter}")
        self.base_ns = int(base_ns)
        self.max_ns = int(max_ns)
        self.factor = float(factor)
        self.jitter = float(jitter)
        self._rng = np.random.default_rng(seed)
        self._current = float(base_ns)
        self.attempts = 0

    def next_delay(self) -> int:
        """The next retry delay; each call grows the subsequent one."""
        delay = min(self._current, float(self.max_ns))
        self._current = min(self._current * self.factor, float(self.max_ns))
        self.attempts += 1
        if self.jitter:
            delay *= 1.0 + self._rng.uniform(-self.jitter, self.jitter)
        return max(1, int(delay))

    def reset(self) -> None:
        """Back to the base delay (call after a successful reconnect)."""
        self._current = float(self.base_ns)
        self.attempts = 0
