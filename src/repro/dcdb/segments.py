"""On-disk segment tier with age-based rollups for the storage backend.

Production DCDB persists readings in Apache Cassandra and relies on the
database for retention: raw readings are kept for a bounded horizon and
older data survives only as coarser aggregates ("Operational Data
Analytics in Practice" describes the raw -> downsampled tiering the LRZ
deployment runs).  The in-memory :class:`~repro.dcdb.storage.
StorageBackend` stand-in caps both run length and retention scenarios;
this module adds the missing durable tier:

- **Segment files** — immutable, append-only columnar files (int64
  timestamp / float64 value column pairs, concatenated per topic) with
  a JSON index header carrying per-segment and per-topic min/max
  timestamps, so range queries prune whole files without touching their
  data blocks.  Writes go to a temporary file that is atomically
  renamed into place, so a crash never leaves a torn segment behind.
- **Flush policy** — :class:`TieredStorageBackend` seals its in-memory
  series into a new raw segment whenever the memory tier exceeds a
  configurable budget (``flush_mb``), recording a per-topic seal
  boundary so the sorted-timestamp invariant holds *across* tiers: a
  reading older than its topic's sealed horizon is refused exactly like
  an out-of-order insert within one tier.
- **Rollup compaction** — raw segments past a configurable age are
  rewritten as 10-second min/mean/max/count aggregates, and 10s rollup
  segments past a second horizon as 1-minute aggregates, mirroring the
  age-based downsampling production DCDB configures in Cassandra.
  Counts are preserved so aggregate mass (``sum = mean x count``) is
  exact across compactions.
- **Transparent query planning** — ``query``/``query_readings``/
  ``query_aggregate`` merge the memory tier with every overlapping
  segment, oldest first; callers (the Query Engine, the Fig 5-8
  benchmark paths) are unchanged.  Per-tier hit counters feed host
  telemetry.
- **Crash recovery** — reopening a directory replays every sealed
  segment's index (data blocks load lazily on first query), restoring
  the seal boundaries, so a restarted Collect Agent refuses stale
  replays just like the original process (complementing the Pushers'
  store-and-forward replay).
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.common.errors import StorageError
from repro.common.timeutil import NS_PER_SEC
from repro.dcdb.sensor import SensorReading
from repro.dcdb.storage import StorageBackend

#: Segment file magic: format version 1 of the columnar layout.
SEGMENT_MAGIC = b"WMSEG01\n"

#: Tier levels: raw readings, 10-second rollups, 1-minute rollups.
LEVEL_RAW, LEVEL_10S, LEVEL_1MIN = 0, 1, 2

#: Rollup bucket width per compaction level.
ROLLUP_BUCKET_NS = {
    LEVEL_10S: 10 * NS_PER_SEC,
    LEVEL_1MIN: 60 * NS_PER_SEC,
}

#: Column sets: raw segments store readings, rollup segments store
#: per-bucket aggregates (count kept so mass is exact).
RAW_COLUMNS = ("ts", "val")
ROLLUP_COLUMNS = ("ts", "min", "mean", "max", "count")

#: On-disk dtype per column name (all 8 bytes wide, so the column block
#: at index ``i`` starts at ``data_offset + i * points * 8``).
_COLUMN_DTYPES = {
    "ts": np.int64,
    "val": np.float64,
    "min": np.float64,
    "mean": np.float64,
    "max": np.float64,
    "count": np.int64,
}

_ITEM = 8  # bytes per element, uniform across columns


def _level_name(level: int) -> str:
    return {LEVEL_RAW: "raw", LEVEL_10S: "rollup_10s",
            LEVEL_1MIN: "rollup_1min"}.get(level, f"level{level}")


def rollup_columns(
    ts: np.ndarray,
    vmin: np.ndarray,
    vmean: np.ndarray,
    vmax: np.ndarray,
    count: np.ndarray,
    bucket_ns: int,
) -> Dict[str, np.ndarray]:
    """Aggregate sorted per-topic columns into ``bucket_ns`` buckets.

    Works uniformly for raw data (pass ``val`` as min/mean/max with a
    count of ones) and for re-bucketing an existing rollup: means are
    combined count-weighted, so total mass is preserved exactly.
    """
    bucket = (ts // bucket_ns) * bucket_ns
    starts = np.flatnonzero(np.r_[True, bucket[1:] != bucket[:-1]])
    counts = np.add.reduceat(count, starts)
    sums = np.add.reduceat(vmean * count, starts)
    return {
        "ts": bucket[starts].astype(np.int64),
        "min": np.minimum.reduceat(vmin, starts),
        "mean": sums / counts,
        "max": np.maximum.reduceat(vmax, starts),
        "count": counts.astype(np.int64),
    }


class Segment:
    """One immutable columnar segment file (index + lazy data blocks).

    The header indexes every topic's slice (offset/count into the
    column blocks) plus its min/max timestamp and last value, so range
    pruning and ``latest`` lookups never read the data blocks.
    """

    __slots__ = (
        "path", "level", "seq", "created_ns", "bucket_ns", "columns",
        "min_ts", "max_ts", "points", "series", "data_offset",
        "disk_bytes", "_data",
    )

    def __init__(self, path: Path, header: dict, data_offset: int) -> None:
        self.path = Path(path)
        self.level = int(header["level"])
        self.seq = int(header["seq"])
        self.created_ns = int(header.get("created_ns", 0))
        self.bucket_ns = int(header.get("bucket_ns", 0))
        self.columns = tuple(header["columns"])
        self.min_ts = int(header["min_ts"])
        self.max_ts = int(header["max_ts"])
        self.points = int(header["points"])
        self.series: Dict[str, dict] = header["series"]
        self.data_offset = data_offset
        self.disk_bytes = self.path.stat().st_size
        self._data: Optional[Dict[str, np.ndarray]] = None

    # -- construction --------------------------------------------------

    @classmethod
    def write(
        cls,
        path: Path,
        seq: int,
        level: int,
        series_data: Dict[str, Dict[str, np.ndarray]],
        created_ns: int = 0,
        bucket_ns: int = 0,
    ) -> "Segment":
        """Seal ``series_data`` (topic -> column arrays) into ``path``.

        The file is written next to its final name and atomically
        renamed, so readers (and crash recovery) only ever observe
        complete segments.
        """
        columns = ROLLUP_COLUMNS if level else RAW_COLUMNS
        index: Dict[str, dict] = {}
        offset = 0
        topics = sorted(series_data)
        for topic in topics:
            cols = series_data[topic]
            ts = cols["ts"]
            n = len(ts)
            if n == 0:
                raise StorageError(f"empty series for segment topic {topic}")
            value_col = cols["mean" if level else "val"]
            index[topic] = {
                "offset": offset,
                "count": n,
                "min_ts": int(ts[0]),
                "max_ts": int(ts[-1]),
                "last_val": float(value_col[-1]),
            }
            offset += n
        if not index:
            raise StorageError("cannot write an empty segment")
        header = {
            "level": int(level),
            "seq": int(seq),
            "created_ns": int(created_ns),
            "bucket_ns": int(bucket_ns),
            "columns": list(columns),
            "min_ts": min(s["min_ts"] for s in index.values()),
            "max_ts": max(s["max_ts"] for s in index.values()),
            "points": offset,
            "series": index,
        }
        blob = json.dumps(header, sort_keys=True).encode("utf-8")
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as fh:
            fh.write(SEGMENT_MAGIC)
            fh.write(struct.pack("<I", len(blob)))
            fh.write(blob)
            for col in columns:
                dtype = _COLUMN_DTYPES[col]
                for topic in topics:
                    fh.write(
                        np.ascontiguousarray(
                            series_data[topic][col], dtype=dtype
                        ).tobytes()
                    )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        data_offset = len(SEGMENT_MAGIC) + 4 + len(blob)
        return cls(path, header, data_offset)

    @classmethod
    def open(cls, path: Path) -> "Segment":
        """Read a segment's index header (data blocks stay on disk)."""
        with open(path, "rb") as fh:
            magic = fh.read(len(SEGMENT_MAGIC))
            if magic != SEGMENT_MAGIC:
                raise StorageError(f"{path}: not a segment file")
            (length,) = struct.unpack("<I", fh.read(4))
            header = json.loads(fh.read(length).decode("utf-8"))
        data_offset = len(SEGMENT_MAGIC) + 4 + length
        return cls(path, header, data_offset)

    # -- data access ---------------------------------------------------

    def _load(self) -> Dict[str, np.ndarray]:
        """Memoized read of the full column blocks."""
        if self._data is None:
            raw = self.path.read_bytes()[self.data_offset:]
            expected = len(self.columns) * self.points * _ITEM
            if len(raw) < expected:
                raise StorageError(
                    f"{self.path}: truncated data block "
                    f"({len(raw)} < {expected} bytes)"
                )
            data = {}
            for i, col in enumerate(self.columns):
                start = i * self.points * _ITEM
                data[col] = np.frombuffer(
                    raw, dtype=_COLUMN_DTYPES[col],
                    count=self.points, offset=start,
                )
            self._data = data
        return self._data

    def release(self) -> None:
        """Drop the memoized data blocks (the index stays resident)."""
        self._data = None

    def overlaps(self, topic: str, start_ts: int, end_ts: int) -> bool:
        entry = self.series.get(topic)
        return (
            entry is not None
            and entry["min_ts"] <= end_ts
            and entry["max_ts"] >= start_ts
        )

    def topic_columns(
        self, topic: str, start_ts: int, end_ts: int
    ) -> Dict[str, np.ndarray]:
        """Column slices of ``topic`` clipped to ``[start_ts, end_ts]``."""
        entry = self.series[topic]
        data = self._load()
        o, n = entry["offset"], entry["count"]
        ts = data["ts"][o : o + n]
        lo = int(np.searchsorted(ts, start_ts, side="left"))
        hi = int(np.searchsorted(ts, end_ts, side="right"))
        return {
            col: data[col][o + lo : o + hi] for col in self.columns
        }

    def query(
        self, topic: str, start_ts: int, end_ts: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(timestamps, values) for ``topic`` within the range.

        Rollup segments answer with bucket-start timestamps and bucket
        means — the downsampled representation *is* the data once raw
        readings have aged out.
        """
        cols = self.topic_columns(topic, start_ts, end_ts)
        return cols["ts"], cols["mean" if self.level else "val"]


class SegmentStore:
    """The segment files of one directory, ordered by sequence number.

    Files are named ``segment-<seq>-l<level>.seg``.  Compaction writes
    the higher-level file before removing the raw one, so a crash in
    between leaves both; :meth:`_scan` resolves the duplicate by
    keeping the highest level per sequence number.
    """

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segments: List[Segment] = []
        self._next_seq = 0
        self._scan()

    def _scan(self) -> None:
        by_seq: Dict[int, Segment] = {}
        for path in sorted(self.directory.glob("segment-*.seg")):
            seg = Segment.open(path)
            other = by_seq.get(seg.seq)
            if other is None:
                by_seq[seg.seq] = seg
            else:
                # Interrupted compaction: keep the higher level, the
                # lower one is the superseded source.
                keep, drop = (
                    (seg, other) if seg.level > other.level else (other, seg)
                )
                by_seq[seg.seq] = keep
                drop.path.unlink(missing_ok=True)
        self.segments = [by_seq[seq] for seq in sorted(by_seq)]
        self._next_seq = max(by_seq, default=-1) + 1

    # -- bookkeeping ---------------------------------------------------

    def _path_for(self, seq: int, level: int) -> Path:
        return self.directory / f"segment-{seq:06d}-l{level}.seg"

    def write(
        self,
        series_data: Dict[str, Dict[str, np.ndarray]],
        level: int = LEVEL_RAW,
        created_ns: int = 0,
        bucket_ns: int = 0,
    ) -> Segment:
        """Seal a new segment at the next sequence number."""
        seq = self._next_seq
        seg = Segment.write(
            self._path_for(seq, level), seq, level, series_data,
            created_ns=created_ns, bucket_ns=bucket_ns,
        )
        self._next_seq += 1
        self.segments.append(seg)
        return seg

    def replace(
        self,
        old: Segment,
        series_data: Dict[str, Dict[str, np.ndarray]],
        level: int,
        created_ns: int = 0,
        bucket_ns: int = 0,
    ) -> Segment:
        """Rewrite ``old`` at a higher rollup level (same seq slot)."""
        seg = Segment.write(
            self._path_for(old.seq, level), old.seq, level, series_data,
            created_ns=created_ns, bucket_ns=bucket_ns,
        )
        old.path.unlink(missing_ok=True)
        self.segments[self.segments.index(old)] = seg
        return seg

    def remove(self, segment: Segment) -> None:
        segment.path.unlink(missing_ok=True)
        self.segments.remove(segment)

    # -- queries -------------------------------------------------------

    def segments_for(
        self, topic: str, start_ts: int, end_ts: int
    ) -> Iterable[Segment]:
        """Segments holding ``topic`` data inside the range, oldest
        first (sequence order is time order per topic — the seal
        boundary guarantees it)."""
        return [
            s for s in self.segments if s.overlaps(topic, start_ts, end_ts)
        ]

    def topics(self) -> List[str]:
        seen = set()
        for seg in self.segments:
            seen.update(seg.series)
        return sorted(seen)

    def count(self, topic: str) -> int:
        return sum(
            seg.series[topic]["count"]
            for seg in self.segments if topic in seg.series
        )

    def latest_entry(self, topic: str) -> Optional[SensorReading]:
        """Newest sealed reading of ``topic`` from the index alone."""
        best: Optional[SensorReading] = None
        for seg in self.segments:
            entry = seg.series.get(topic)
            if entry is not None and (
                best is None or entry["max_ts"] >= best.timestamp
            ):
                best = SensorReading(entry["max_ts"], entry["last_val"])
        return best

    def total_points(self) -> int:
        return sum(seg.points for seg in self.segments)

    def disk_bytes(self) -> int:
        return sum(seg.disk_bytes for seg in self.segments)

    def level_counts(self) -> Dict[str, int]:
        counts = {"raw": 0, "rollup_10s": 0, "rollup_1min": 0}
        for seg in self.segments:
            name = _level_name(seg.level)
            counts[name] = counts.get(name, 0) + 1
        return counts


class TieredStorageBackend(StorageBackend):
    """Two-tier topic-keyed store: hot in-memory series + sealed
    segments on disk, with age-based rollup compaction.

    Drop-in for :class:`StorageBackend` everywhere a host holds one —
    the Query Engine, the Collect Agent ingest path and the benchmark
    drivers all work unchanged.  Args beyond the base class:

    Args:
        directory: segment directory; reopening it replays every sealed
            segment (crash recovery).
        flush_mb: memory-tier budget; :meth:`maintain` seals the series
            into a raw segment once :meth:`memory_bytes` exceeds it.
        rollup_after_ns: age at which raw segments are compacted into
            10-second aggregates (0 disables rollups).
        rollup_minute_after_ns: age at which 10s rollup segments are
            compacted into 1-minute aggregates (0 disables).
        retention_raw_ns: drop raw segments wholly older than this
            horizon (0 keeps them forever).
        retention_rollup_ns: same for rollup segments.
        maintenance_interval_ns: how often the hosting agent should run
            :meth:`maintain` (advisory; the agent schedules it).
    """

    def __init__(
        self,
        directory,
        flush_mb: float = 64.0,
        rollup_after_ns: int = 0,
        rollup_minute_after_ns: int = 0,
        retention_raw_ns: int = 0,
        retention_rollup_ns: int = 0,
        ttl_ns: int = 0,
        maintenance_interval_ns: int = 30 * NS_PER_SEC,
    ) -> None:
        super().__init__(ttl_ns=ttl_ns)
        self.store = SegmentStore(directory)
        self.flush_bytes = int(flush_mb * 2**20)
        self.rollup_after_ns = int(rollup_after_ns)
        self.rollup_minute_after_ns = int(rollup_minute_after_ns)
        self.retention_raw_ns = int(retention_raw_ns)
        self.retention_rollup_ns = int(retention_rollup_ns)
        self.maintenance_interval_ns = int(maintenance_interval_ns)
        #: Per-tier query hit counters (a query may hit several tiers).
        self.tier_hits: Dict[str, int] = {
            "memory": 0, "segment": 0, "rollup": 0,
        }
        self.flush_count = 0
        self.rollup_compactions = 0
        self.segments_expired = 0
        #: Points replayed from sealed segments when this directory was
        #: (re)opened — the crash-recovery visibility number.
        self.replayed_points = self.store.total_points()
        #: topic -> newest sealed timestamp: the cross-tier ordering
        #: floor.  Readings older than their topic's seal are refused
        #: exactly like an out-of-order insert within one tier.
        self._sealed: Dict[str, int] = {}
        for seg in self.store.segments:
            for topic, entry in seg.series.items():
                prev = self._sealed.get(topic)
                if prev is None or entry["max_ts"] > prev:
                    self._sealed[topic] = entry["max_ts"]

    # ------------------------------------------------------------------
    # Inserts: the cross-tier ordering guard
    # ------------------------------------------------------------------

    def insert(self, topic: str, timestamp: int, value: float) -> None:
        floor = self._sealed.get(topic)
        if floor is not None and timestamp < floor:
            self.ooo_dropped += 1
            return
        super().insert(topic, timestamp, value)

    def insert_batch(self, topic: str, timestamps, values) -> None:
        floor = self._sealed.get(topic)
        if floor is not None and len(timestamps):
            timestamps = np.asarray(timestamps, dtype=np.int64)
            values = np.asarray(values, dtype=np.float64)
            if len(timestamps) == len(values):
                keep = timestamps >= floor
                if not keep.all():
                    self.ooo_dropped += int(len(timestamps) - keep.sum())
                    timestamps = timestamps[keep]
                    values = values[keep]
        super().insert_batch(topic, timestamps, values)

    # ------------------------------------------------------------------
    # Cross-tier queries
    # ------------------------------------------------------------------

    def _query_merged(
        self, topic: str, start_ts: int, end_ts: int, count_hits: bool = True
    ) -> Tuple[np.ndarray, np.ndarray]:
        parts: List[Tuple[np.ndarray, np.ndarray]] = []
        hit_tiers = set()
        for seg in self.store.segments_for(topic, start_ts, end_ts):
            ts, val = seg.query(topic, start_ts, end_ts)
            if len(ts):
                parts.append((ts, val))
                hit_tiers.add("rollup" if seg.level else "segment")
        series = self._series.get(topic)
        if series is not None:
            ts, val = series.range(start_ts, end_ts)
            if len(ts):
                parts.append((ts, val))
                hit_tiers.add("memory")
        if count_hits:
            for tier in hit_tiers:
                self.tier_hits[tier] += 1
        if not parts:
            return (
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
            )
        if len(parts) == 1:
            return parts[0]
        return (
            np.concatenate([p[0] for p in parts]),
            np.concatenate([p[1] for p in parts]),
        )

    def query(
        self, topic: str, start_ts: int, end_ts: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        if start_ts > end_ts:
            raise StorageError(f"inverted range: {start_ts} > {end_ts}")
        self.query_count += 1
        return self._query_merged(topic, start_ts, end_ts)

    def latest(self, topic: str) -> Optional[SensorReading]:
        newest = super().latest(topic)
        if newest is not None:
            return newest
        return self.store.latest_entry(topic)

    def __contains__(self, topic: str) -> bool:
        return super().__contains__(topic) or any(
            topic in seg.series for seg in self.store.segments
        )

    def topics(self) -> List[str]:
        merged = set(super().topics())
        merged.update(self.store.topics())
        return sorted(merged)

    def count(self, topic: str) -> int:
        return super().count(topic) + self.store.count(topic)

    def total_readings(self) -> int:
        """Stored points across tiers (rollups count as one per bucket)."""
        return super().total_readings() + self.store.total_points()

    def disk_bytes(self) -> int:
        """Resident size of the segment tier on disk."""
        return self.store.disk_bytes()

    # ------------------------------------------------------------------
    # Flush, rollup, retention
    # ------------------------------------------------------------------

    def flush(self, now_ns: int = 0) -> int:
        """Seal every in-memory series into one raw segment.

        Returns the number of readings sealed (0 when the memory tier
        is empty).  Sealed topics restart with fresh (empty) series;
        their ordering guard moves into the cross-tier seal boundary.
        """
        data: Dict[str, Dict[str, np.ndarray]] = {}
        for topic, series in self._series.items():
            if series.size == 0:
                continue
            data[topic] = {
                "ts": series.ts[: series.size].copy(),
                "val": series.val[: series.size].copy(),
            }
        if not data:
            return 0
        seg = self.store.write(data, LEVEL_RAW, created_ns=now_ns)
        for topic, entry in seg.series.items():
            self._sealed[topic] = entry["max_ts"]
            del self._series[topic]
        self.flush_count += 1
        return seg.points

    def _compact(self, seg: Segment, level: int, now_ns: int) -> None:
        bucket_ns = ROLLUP_BUCKET_NS[level]
        data: Dict[str, Dict[str, np.ndarray]] = {}
        for topic in seg.series:
            cols = seg.topic_columns(topic, seg.min_ts, seg.max_ts)
            if seg.level == LEVEL_RAW:
                val = cols["val"]
                vmin = vmean = vmax = val
                count = np.ones(len(val), dtype=np.int64)
            else:
                vmin, vmean, vmax = cols["min"], cols["mean"], cols["max"]
                count = cols["count"]
            data[topic] = rollup_columns(
                cols["ts"], vmin, vmean, vmax, count, bucket_ns
            )
        self.store.replace(
            seg, data, level, created_ns=now_ns, bucket_ns=bucket_ns
        )
        self.rollup_compactions += 1

    def maintain(self, now_ns: int) -> Dict[str, int]:
        """One maintenance sweep: TTL, flush, rollups, retention.

        Scheduled periodically by the hosting Collect Agent (every
        ``maintenance_interval_ns``); safe to call at any time.
        """
        stats = {"expired": 0, "flushed": 0, "compacted": 0, "dropped": 0}
        if self.ttl_ns > 0:
            stats["expired"] = self.expire(now_ns)
        if self.memory_bytes() > self.flush_bytes:
            stats["flushed"] = self.flush(now_ns)
        before = self.rollup_compactions
        if self.rollup_after_ns > 0:
            cutoff = now_ns - self.rollup_after_ns
            for seg in list(self.store.segments):
                if seg.level == LEVEL_RAW and seg.max_ts < cutoff:
                    self._compact(seg, LEVEL_10S, now_ns)
        if self.rollup_minute_after_ns > 0:
            cutoff = now_ns - self.rollup_minute_after_ns
            for seg in list(self.store.segments):
                if seg.level == LEVEL_10S and seg.max_ts < cutoff:
                    self._compact(seg, LEVEL_1MIN, now_ns)
        stats["compacted"] = self.rollup_compactions - before
        for horizon, levels in (
            (self.retention_raw_ns, (LEVEL_RAW,)),
            (self.retention_rollup_ns, (LEVEL_10S, LEVEL_1MIN)),
        ):
            if horizon <= 0:
                continue
            cutoff = now_ns - horizon
            for seg in list(self.store.segments):
                if seg.level in levels and seg.max_ts < cutoff:
                    self.store.remove(seg)
                    self.segments_expired += 1
                    stats["dropped"] += 1
        return stats

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------

    def tier_stats(self) -> dict:
        """Telemetry/CLI view of the tier state and traffic."""
        return {
            "tiers": "tiered",
            "directory": str(self.store.directory),
            "segments": self.store.level_counts(),
            "segment_points": self.store.total_points(),
            "memory_readings": super().total_readings(),
            "memory_bytes": self.memory_bytes(),
            "flush_budget_bytes": self.flush_bytes,
            "disk_bytes": self.disk_bytes(),
            "tier_hits": dict(self.tier_hits),
            "flushes": self.flush_count,
            "rollup_compactions": self.rollup_compactions,
            "segments_expired": self.segments_expired,
            "replayed_points": self.replayed_points,
            "ooo_dropped": self.ooo_dropped,
        }

    def save(self, path: str) -> int:
        """Snapshot the *merged* view of both tiers to a ``.npz`` file.

        The snapshot is loadable with :meth:`StorageBackend.load` (it
        restores as a memory-only backend); the segment directory
        itself already is the durable representation.
        """
        arrays = {}
        topics = self.topics()
        for i, topic in enumerate(topics):
            ts, val = self._query_merged(topic, 0, 2**62, count_hits=False)
            arrays[f"topic_{i}"] = np.frombuffer(
                topic.encode("utf-8"), dtype=np.uint8
            )
            arrays[f"ts_{i}"] = ts
            arrays[f"val_{i}"] = val
        np.savez_compressed(
            path, n_series=np.int64(len(topics)), **arrays
        )
        return len(topics)
