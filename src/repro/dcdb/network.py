"""Network conditions for the MQTT path.

The in-process broker delivers synchronously — the idealised network.
Real deployments see management-network latency, jitter and occasional
loss between Pushers and Collect Agents; :class:`NetworkConditions`
injects exactly those effects without touching producers or consumers:
it wraps a broker, delays each publish by a (deterministic, seeded)
latency sample via one-shot scheduler tasks, and drops a configurable
fraction of messages.

This powers the placement ablation's latency analysis and robustness
tests: in-band (Pusher-side) analytics are immune to these conditions,
out-of-band (Collect-Agent-side) analytics see them — the trade-off
Section IV-a describes.
"""

from __future__ import annotations


import numpy as np

from repro.common.errors import ConfigError
from repro.dcdb.mqtt import Broker
from repro.sanitizer import hooks
from repro.simulator.clock import TaskScheduler


class NetworkConditions:
    """A lossy, delaying link in front of a broker.

    Producers call :meth:`publish` exactly as they would on the broker;
    delivery happens when the simulation clock reaches the send time
    plus a sampled latency.  Messages may be dropped.  Ordering is
    whatever the latency samples induce (late messages genuinely arrive
    late, as on a real network; the cache/storage layers already drop
    stale out-of-order readings).

    Args:
        broker: the destination broker.
        scheduler: task scheduler driving deliveries.
        latency_ns: mean one-way latency.
        jitter_ns: uniform +/- jitter applied per message.
        drop_probability: fraction of messages silently lost.
        seed: deterministic randomness for jitter and drops.
    """

    def __init__(
        self,
        broker: Broker,
        scheduler: TaskScheduler,
        latency_ns: int = 0,
        jitter_ns: int = 0,
        drop_probability: float = 0.0,
        seed: int = 0,
    ) -> None:
        if latency_ns < 0 or jitter_ns < 0:
            raise ConfigError("latency/jitter must be non-negative")
        if not (0.0 <= drop_probability < 1.0):
            raise ConfigError(
                f"drop_probability must be in [0, 1): {drop_probability}"
            )
        if jitter_ns > latency_ns:
            raise ConfigError("jitter cannot exceed the mean latency")
        self.broker = broker
        self.scheduler = scheduler
        self.latency_ns = int(latency_ns)
        self.jitter_ns = int(jitter_ns)
        self.drop_probability = float(drop_probability)
        self._rng = np.random.default_rng(seed)
        # Guards the counters and the RNG: the link is shared by every
        # Pusher on the deployment, and under a WallClockDriver those
        # publishes arrive from multiple threads.  Never held across
        # ``broker.publish`` — the fan-out runs subscriber callbacks of
        # unbounded cost (see rule R002).
        self._lock = hooks.make_lock("NetworkConditions")
        self.sent = 0
        self.dropped = 0
        self.delivered = 0

    # ------------------------------------------------------------------

    def _sample_latency(self) -> int:
        if self.jitter_ns == 0:
            return self.latency_ns
        return int(
            self.latency_ns
            + self._rng.integers(-self.jitter_ns, self.jitter_ns + 1)
        )

    def publish(self, topic: str, value: float, timestamp: int) -> None:
        """Send one message through the link."""
        with self._lock:
            self.sent += 1
            if (
                self.drop_probability
                and self._rng.random() < self.drop_probability
            ):
                self.dropped += 1
                return
            latency = self._sample_latency() if self.latency_ns else 0
        if latency == 0:
            self.broker.publish(topic, value, timestamp)
            with self._lock:
                self.delivered += 1
            return
        due = self.scheduler.clock.now + latency

        def deliver(ts: int, t=topic, v=value, orig=timestamp) -> None:
            self.broker.publish(t, v, orig)
            with self._lock:
                self.delivered += 1

        self.scheduler.add_once("net-delivery", deliver, due)

    # Duck-type compatibility with Broker for producers that only publish.
    def subscribe(self, *args, **kwargs):
        """Subscriptions attach to the destination broker directly."""
        return self.broker.subscribe(*args, **kwargs)

    def unsubscribe(self, sub_id: int) -> bool:
        return self.broker.unsubscribe(sub_id)

    @property
    def in_flight(self) -> int:
        """Messages sent but not yet delivered or dropped."""
        with self._lock:
            return self.sent - self.dropped - self.delivered

    def loss_rate(self) -> float:
        """Observed drop fraction so far."""
        with self._lock:
            return self.dropped / self.sent if self.sent else 0.0
