"""Network conditions for the MQTT path.

The in-process broker delivers synchronously — the idealised network.
Real deployments see management-network latency, jitter and occasional
loss between Pushers and Collect Agents; :class:`NetworkConditions`
injects exactly those effects without touching producers or consumers:
it wraps a broker, delays each publish by a (deterministic, seeded)
latency sample via one-shot scheduler tasks, and drops a configurable
fraction of messages.

This powers the placement ablation's latency analysis and robustness
tests: in-band (Pusher-side) analytics are immune to these conditions,
out-of-band (Collect-Agent-side) analytics see them — the trade-off
Section IV-a describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConfigError, LinkDownError
from repro.dcdb.mqtt import Broker, Message
from repro.sanitizer import hooks
from repro.simulator.clock import TaskScheduler


@dataclass(frozen=True)
class Outage:
    """One scheduled down-window of a link.

    ``prefixes`` restricts the outage to destinations (topic prefixes):
    a per-destination partition.  ``None`` means the whole link is down.
    """

    start_ns: int
    end_ns: int
    prefixes: Optional[Tuple[str, ...]] = None

    def covers(self, at_ns: int, topic: Optional[str] = None) -> bool:
        """Whether this outage refuses ``topic`` at time ``at_ns``.

        With ``topic=None`` only whole-link outages match — a partition
        cannot answer "is the link down" without knowing the
        destination.
        """
        if not (self.start_ns <= at_ns < self.end_ns):
            return False
        if self.prefixes is None:
            return True
        if topic is None:
            return False
        return any(topic.startswith(p) for p in self.prefixes)


class NetworkConditions:
    """A lossy, delaying link in front of a broker.

    Producers call :meth:`publish` exactly as they would on the broker;
    delivery happens when the simulation clock reaches the send time
    plus a sampled latency.  Messages may be dropped.  Ordering is
    whatever the latency samples induce (late messages genuinely arrive
    late, as on a real network; the cache/storage layers already drop
    stale out-of-order readings).

    Args:
        broker: the destination broker.
        scheduler: task scheduler driving deliveries.
        latency_ns: mean one-way latency.
        jitter_ns: uniform +/- jitter applied per message.
        drop_probability: fraction of messages silently lost.
        seed: deterministic randomness for jitter and drops.
    """

    def __init__(
        self,
        broker: Broker,
        scheduler: TaskScheduler,
        latency_ns: int = 0,
        jitter_ns: int = 0,
        drop_probability: float = 0.0,
        seed: int = 0,
    ) -> None:
        if latency_ns < 0 or jitter_ns < 0:
            raise ConfigError("latency/jitter must be non-negative")
        if not (0.0 <= drop_probability < 1.0):
            raise ConfigError(
                f"drop_probability must be in [0, 1): {drop_probability}"
            )
        if jitter_ns > latency_ns:
            raise ConfigError("jitter cannot exceed the mean latency")
        self.broker = broker
        self.scheduler = scheduler
        self.latency_ns = int(latency_ns)
        self.jitter_ns = int(jitter_ns)
        self.drop_probability = float(drop_probability)
        self._rng = np.random.default_rng(seed)
        # Guards the counters and the RNG: the link is shared by every
        # Pusher on the deployment, and under a WallClockDriver those
        # publishes arrive from multiple threads.  Never held across
        # ``broker.publish`` — the fan-out runs subscriber callbacks of
        # unbounded cost (see rule R002).
        self._lock = hooks.make_lock("NetworkConditions")
        self.sent = 0
        self.dropped = 0
        self.delivered = 0
        #: Publishes refused (not silently dropped) by a down-window.
        self.refused = 0
        self._outages: List[Outage] = []

    # ------------------------------------------------------------------
    # Outages and partitions
    # ------------------------------------------------------------------

    def schedule_outage(
        self,
        start_ns: int,
        end_ns: int,
        destinations: Optional[Sequence[str]] = None,
    ) -> Outage:
        """Declare a down-window of the link.

        Publishes issued inside ``[start_ns, end_ns)`` raise
        :class:`LinkDownError` — the producer is *told* its message was
        refused, unlike probabilistic drops which model silent loss.
        ``destinations`` restricts the outage to topic prefixes (a
        per-destination partition); ``None`` takes the whole link down.
        Messages already in flight when the outage starts still arrive:
        they were on the wire.
        """
        if start_ns >= end_ns:
            raise ConfigError(
                f"outage must end after it starts: [{start_ns}, {end_ns})"
            )
        prefixes = None
        if destinations is not None:
            if not destinations:
                raise ConfigError("outage destinations must be non-empty")
            prefixes = tuple(str(d) for d in destinations)
        outage = Outage(int(start_ns), int(end_ns), prefixes)
        with self._lock:
            self._outages.append(outage)
            self._outages.sort(key=lambda o: o.start_ns)
        return outage

    def schedule_random_outages(
        self,
        count: int,
        horizon_ns: int,
        mean_duration_ns: int,
        destinations: Optional[Sequence[str]] = None,
    ) -> List[Outage]:
        """Seed ``count`` deterministic down-windows over ``horizon_ns``.

        Start times are uniform over the horizon and durations
        exponential around the mean, both drawn from the link's seeded
        RNG — the same seed always produces the same chaos schedule.
        """
        if count < 1 or horizon_ns <= 0 or mean_duration_ns <= 0:
            raise ConfigError(
                "random outages need count >= 1 and positive horizon/duration"
            )
        now = self.scheduler.clock.now
        with self._lock:
            starts = np.sort(self._rng.uniform(0, horizon_ns, size=count))
            durations = self._rng.exponential(mean_duration_ns, size=count)
        return [
            self.schedule_outage(
                now + int(start),
                now + int(start) + max(1, int(duration)),
                destinations=destinations,
            )
            for start, duration in zip(starts, durations)
        ]

    def _refusing_outage(
        self, topic: Optional[str], at_ns: int
    ) -> Optional[Outage]:
        """The first outage covering (topic, at_ns); callers hold _lock
        or accept a racy read (query API)."""
        for outage in self._outages:
            if outage.start_ns > at_ns:
                break  # sorted by start; nothing later can cover at_ns
            if outage.covers(at_ns, topic):
                return outage
        return None

    def is_up(
        self, topic: Optional[str] = None, at_ns: Optional[int] = None
    ) -> bool:
        """Whether a publish to ``topic`` would be accepted at ``at_ns``.

        ``topic=None`` asks about the link as a whole (per-destination
        partitions do not count); ``at_ns`` defaults to now.
        """
        when = self.scheduler.clock.now if at_ns is None else int(at_ns)
        with self._lock:
            return self._refusing_outage(topic, when) is None

    def link_state(self, topic: Optional[str] = None) -> dict:
        """Queryable link status: up/down, the covering outage, the next
        scheduled down-window, and the delivery counters."""
        now = self.scheduler.clock.now
        with self._lock:
            current = self._refusing_outage(topic, now)
            upcoming = [
                o.start_ns
                for o in self._outages
                if o.start_ns > now
                and (o.prefixes is None or topic is None
                     or o.covers(o.start_ns, topic))
            ]
            return {
                "up": current is None,
                "now_ns": now,
                "down_until_ns": current.end_ns if current else None,
                "next_outage_ns": min(upcoming) if upcoming else None,
                "sent": self.sent,
                "delivered": self.delivered,
                "dropped": self.dropped,
                "refused": self.refused,
                "in_flight": self.sent - self.dropped - self.delivered,
            }

    # ------------------------------------------------------------------

    def _sample_latency(self) -> int:
        if self.jitter_ns == 0:
            return self.latency_ns
        return int(
            self.latency_ns
            + self._rng.integers(-self.jitter_ns, self.jitter_ns + 1)
        )

    def publish(self, topic: str, value: float, timestamp: int) -> None:
        """Send one message through the link.

        Raises :class:`LinkDownError` when a scheduled outage covers the
        destination — the message never enters the link (not counted as
        sent) and the producer decides whether to buffer and retry.
        """
        with self._lock:
            outage = self._refusing_outage(topic, self.scheduler.clock.now)
            if outage is not None:
                self.refused += 1
                until = outage.end_ns
        if outage is not None:
            raise LinkDownError(
                f"link down for {topic!r} until t={until}ns",
                until_ns=until,
            )
        with self._lock:
            self.sent += 1
            if (
                self.drop_probability
                and self._rng.random() < self.drop_probability
            ):
                self.dropped += 1
                return
            latency = self._sample_latency() if self.latency_ns else 0
        if latency == 0:
            self.broker.publish(topic, value, timestamp)
            with self._lock:
                self.delivered += 1
            return
        due = self.scheduler.clock.now + latency

        def deliver(ts: int, t=topic, v=value, orig=timestamp) -> None:
            self.broker.publish(t, v, orig)
            with self._lock:
                self.delivered += 1

        self.scheduler.add_once("net-delivery", deliver, due)

    def publish_batch(self, messages: Sequence[Message]) -> None:
        """Send many messages through the link, in list order.

        Per-message semantics (latency sampling, drops, refusals) match
        :meth:`publish` exactly — the batched store path behaves
        identically to the scalar one behind a degraded link.  When any
        destination is down, the deliverable messages still go out and
        one :class:`LinkDownError` is raised afterwards carrying the
        refused subset in its ``refused`` attribute, so store-and-forward
        producers spill exactly what was not accepted.
        """
        refused: List[Message] = []
        until = None
        for msg in messages:
            try:
                self.publish(msg.topic, msg.value, msg.timestamp)
            except LinkDownError as exc:
                refused.append(msg)
                if exc.until_ns is not None:
                    until = max(until or 0, exc.until_ns)
        if refused:
            raise LinkDownError(
                f"link refused {len(refused)}/{len(messages)} messages",
                until_ns=until,
                refused=refused,
            )

    # Duck-type compatibility with Broker for producers that only publish.
    def subscribe(self, *args, **kwargs):
        """Subscriptions attach to the destination broker directly."""
        return self.broker.subscribe(*args, **kwargs)

    def unsubscribe(self, sub_id: int) -> bool:
        return self.broker.unsubscribe(sub_id)

    @property
    def in_flight(self) -> int:
        """Messages sent but not yet delivered or dropped."""
        with self._lock:
            return self.sent - self.dropped - self.delivered

    def loss_rate(self) -> float:
        """Observed drop fraction so far."""
        with self._lock:
            return self.dropped / self.sent if self.sent else 0.0
