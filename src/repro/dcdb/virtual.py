"""Virtual sensors: expression-defined, query-time-evaluated sensors.

DCDB supports *virtual sensors* — sensors that hold no stored readings
but are defined by an arithmetic expression over other sensors and
evaluated on demand when queried (e.g. total rack power as the sum of
its nodes, or power-per-flop efficiency).  Wintermute operators can use
them as inputs like any physical sensor.

Expression grammar (classic precedence, recursive descent)::

    expr   := term (('+' | '-') term)*
    term   := factor (('*' | '/') factor)*
    factor := NUMBER | '<' topic '>' | '(' expr ')' | '-' factor

Sensor references are written in angle brackets: ``<(/r0/n0/power)>`` is
not required — plain ``</r0/n0/power>`` works.  Evaluation aligns every
referenced series onto a regular time grid with sample-and-hold
semantics and applies the expression vectorised over NumPy arrays;
division by zero yields NaN rather than raising.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import ConfigError, QueryError
from repro.common.topics import normalize_topic

# ----------------------------------------------------------------------
# Expression AST
# ----------------------------------------------------------------------


class ExprNode:
    """Base expression node; evaluates over aligned input arrays."""

    def eval(self, inputs: Dict[str, np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def topics(self) -> List[str]:
        """All sensor topics referenced by the subtree."""
        return []


@dataclass(frozen=True)
class Const(ExprNode):
    value: float

    def eval(self, inputs):
        return np.float64(self.value)


@dataclass(frozen=True)
class Ref(ExprNode):
    topic: str

    def eval(self, inputs):
        return inputs[self.topic]

    def topics(self):
        return [self.topic]


@dataclass(frozen=True)
class Unary(ExprNode):
    child: ExprNode

    def eval(self, inputs):
        return -self.child.eval(inputs)

    def topics(self):
        return self.child.topics()


_OPS: Dict[str, Callable] = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
}


@dataclass(frozen=True)
class Binary(ExprNode):
    op: str
    left: ExprNode
    right: ExprNode

    def eval(self, inputs):
        lhs = self.left.eval(inputs)
        rhs = self.right.eval(inputs)
        with np.errstate(divide="ignore", invalid="ignore"):
            out = _OPS[self.op](lhs, rhs)
        return out

    def topics(self):
        return self.left.topics() + self.right.topics()


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+\.?\d*(?:[eE][+-]?\d+)?)"
    r"|<(?P<ref>[^<>]+)>"
    r"|(?P<op>[-+*/()]))"
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ConfigError(
                f"bad virtual-sensor expression near {text[pos:pos+12]!r}"
            )
        if match.group("num") is not None:
            tokens.append(("num", match.group("num")))
        elif match.group("ref") is not None:
            tokens.append(("ref", match.group("ref").strip()))
        else:
            tokens.append(("op", match.group("op")))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    def _peek(self) -> Optional[Tuple[str, str]]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _take(self) -> Tuple[str, str]:
        tok = self._peek()
        if tok is None:
            raise ConfigError("unexpected end of expression")
        self.pos += 1
        return tok

    def parse(self) -> ExprNode:
        node = self.expr()
        if self._peek() is not None:
            raise ConfigError(
                f"trailing tokens in expression: {self.tokens[self.pos:]}"
            )
        return node

    def expr(self) -> ExprNode:
        node = self.term()
        while self._peek() in (("op", "+"), ("op", "-")):
            op = self._take()[1]
            node = Binary(op, node, self.term())
        return node

    def term(self) -> ExprNode:
        node = self.factor()
        while self._peek() in (("op", "*"), ("op", "/")):
            op = self._take()[1]
            node = Binary(op, node, self.factor())
        return node

    def factor(self) -> ExprNode:
        kind, text = self._take()
        if kind == "num":
            return Const(float(text))
        if kind == "ref":
            return Ref(normalize_topic(text))
        if (kind, text) == ("op", "-"):
            return Unary(self.factor())
        if (kind, text) == ("op", "("):
            node = self.expr()
            closing = self._take()
            if closing != ("op", ")"):
                raise ConfigError("unbalanced parentheses in expression")
            return node
        raise ConfigError(f"unexpected token {text!r} in expression")


def parse_expression(text: str) -> ExprNode:
    """Parse a virtual-sensor expression into an AST."""
    if not text or not text.strip():
        raise ConfigError("empty virtual-sensor expression")
    return _Parser(_tokenize(text)).parse()


# ----------------------------------------------------------------------
# Virtual sensors
# ----------------------------------------------------------------------


class VirtualSensor:
    """A query-time-evaluated derived sensor.

    Args:
        topic: the virtual sensor's own topic.
        expression: arithmetic expression with ``<topic>`` references.
        interval_ns: evaluation grid period.
    """

    def __init__(self, topic: str, expression: str, interval_ns: int) -> None:
        if interval_ns <= 0:
            raise ConfigError(
                f"virtual sensor {topic}: interval must be positive"
            )
        self.topic = normalize_topic(topic)
        self.expression_text = expression
        self.expression = parse_expression(expression)
        self.interval_ns = int(interval_ns)
        self.inputs = sorted(set(self.expression.topics()))
        if not self.inputs:
            raise ConfigError(
                f"virtual sensor {topic}: expression references no sensors"
            )

    def evaluate(
        self,
        fetch: Callable[[str, int, int], Tuple[np.ndarray, np.ndarray]],
        start_ts: int,
        end_ts: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate over ``[start_ts, end_ts]``.

        ``fetch(topic, start, end)`` must return (timestamps, values)
        for a physical sensor.  Inputs are aligned to the evaluation
        grid with sample-and-hold; grid points before an input's first
        reading are NaN.  Returns (grid_timestamps, values).
        """
        if start_ts > end_ts:
            raise QueryError(f"inverted range: {start_ts} > {end_ts}")
        grid = np.arange(start_ts, end_ts + 1, self.interval_ns, dtype=np.int64)
        if grid.size == 0:
            return grid, np.empty(0)
        aligned: Dict[str, np.ndarray] = {}
        # Look back one extra interval so sample-and-hold has a seed.
        lookback = start_ts - 16 * self.interval_ns
        for topic in self.inputs:
            ts, values = fetch(topic, lookback, end_ts)
            ts = np.asarray(ts, dtype=np.int64)
            values = np.asarray(values, dtype=np.float64)
            if ts.size == 0:
                aligned[topic] = np.full(grid.size, np.nan)
                continue
            idx = np.searchsorted(ts, grid, side="right") - 1
            col = np.where(idx >= 0, values[np.clip(idx, 0, None)], np.nan)
            aligned[topic] = col
        out = self.expression.eval(aligned)
        out = np.broadcast_to(np.asarray(out, dtype=np.float64), grid.shape)
        return grid, np.array(out)


class VirtualSensorRegistry:
    """Topic-keyed collection of virtual sensors for one host."""

    def __init__(self) -> None:
        self._sensors: Dict[str, VirtualSensor] = {}

    def register(self, sensor: VirtualSensor) -> VirtualSensor:
        if sensor.topic in self._sensors:
            raise ConfigError(f"duplicate virtual sensor {sensor.topic}")
        self._sensors[sensor.topic] = sensor
        return sensor

    def define(self, topic: str, expression: str, interval_ns: int) -> VirtualSensor:
        """Create and register in one step."""
        return self.register(VirtualSensor(topic, expression, interval_ns))

    def get(self, topic: str) -> Optional[VirtualSensor]:
        return self._sensors.get(topic)

    def topics(self) -> List[str]:
        return sorted(self._sensors)

    def __contains__(self, topic: str) -> bool:
        return topic in self._sensors

    def __len__(self) -> int:
        return len(self._sensors)
