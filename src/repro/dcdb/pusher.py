"""The DCDB Pusher.

A Pusher runs on every monitored component (typically a compute node),
hosts monitoring plugins that sample sensors at fixed intervals, keeps
recent readings in per-sensor caches, and publishes readings over MQTT
to a Collect Agent.  Wintermute operators can be co-located in a Pusher
for in-band, low-latency analysis (Section IV-a): the
:class:`~repro.core.manager.OperatorManager` attaches through
:meth:`attach_analytics` and reuses the Pusher's caches, scheduler,
publishing path and REST API.

Sampling-time accounting lives in the host's metric registry
(:mod:`repro.telemetry`): per-plugin sampling latency histograms, busy
and error counters, and collection-time cache gauges, all exposed over
``GET /metrics``.  The Fig 5 overhead benchmark derives its percentages
from these counters.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.common.errors import ConfigError, LinkDownError, PluginError
from repro.common.timeutil import NS_PER_SEC
from repro.dcdb.cache import SensorCache
from repro.dcdb.mqtt import Broker, Message
from repro.dcdb.plugins.base import MonitoringPlugin
from repro.dcdb.resilience import ExponentialBackoff, SpillQueue
from repro.dcdb.restapi import RestApi, RestResponse
from repro.dcdb.sensor import Sensor
from repro.sanitizer import hooks
from repro.simulator.clock import TaskScheduler
from repro.telemetry import Histogram, MetricRegistry, register_metrics_route


class Pusher:
    """Sampling host for one monitored component.

    Args:
        name: host identifier (conventionally the node path it runs on).
        broker: MQTT broker readings are published to (possibly behind a
            :class:`~repro.dcdb.network.NetworkConditions` link).
        scheduler: shared task scheduler driving periodic sampling.
        cache_window_ns: retention of the per-sensor caches (the paper's
            experiments use 180 s).
        spill_capacity: bound of the store-and-forward queue holding
            publishes refused by a down link.
        spill_policy: overflow policy of that queue (``drop-oldest``
            default, or ``drop-newest``).
        retry_base_ns / retry_max_ns: exponential reconnect backoff
            bounds for re-publishing spilled readings.
        retry_seed: deterministic jitter seed for the retry backoff.
    """

    def __init__(
        self,
        name: str,
        broker: Broker,
        scheduler: TaskScheduler,
        cache_window_ns: int = 180 * NS_PER_SEC,
        spill_capacity: int = 8192,
        spill_policy: str = "drop-oldest",
        retry_base_ns: int = NS_PER_SEC // 2,
        retry_max_ns: int = 30 * NS_PER_SEC,
        retry_seed: int = 0,
    ) -> None:
        self.name = name
        self.broker = broker
        self.scheduler = scheduler
        self.cache_window_ns = int(cache_window_ns)
        # Store-and-forward state: refused publishes land in the spill
        # queue and are replayed on reconnect.  Guarded by a sanitizer
        # seam lock — sampling tasks and retry tasks may run on
        # different threads under a WallClockDriver.
        self._spill = SpillQueue(spill_capacity, spill_policy)
        self._spill_lock = hooks.make_lock("Pusher.spill")
        self._backoff = ExponentialBackoff(
            retry_base_ns, retry_max_ns, seed=retry_seed
        )
        self._retry_pending = False
        self._replaying = False
        self.caches: Dict[str, SensorCache] = {}
        self.sensors: Dict[str, Sensor] = {}
        self._plugins: Dict[str, MonitoringPlugin] = {}
        self._tasks: Dict[str, object] = {}
        self.rest = RestApi()
        self.telemetry = MetricRegistry()
        self._m_sampling_busy = self.telemetry.counter("sampling_busy_ns_total")
        self._m_sampling_errors = self.telemetry.counter(
            "sampling_errors_total"
        )
        self._m_plugin_latency: Dict[str, Histogram] = {}
        self._m_spill_buffered = self.telemetry.counter("spill_buffered_total")
        self._m_spill_replayed = self.telemetry.counter("spill_replayed_total")
        self._m_spill_dropped = self.telemetry.counter("spill_dropped_total")
        self._m_link_refusals = self.telemetry.counter("link_refusals_total")
        self.telemetry.gauge("spill_queue_depth", fn=lambda: len(self._spill))
        self._register_cache_gauges()
        self.last_sampling_errors: List[str] = []
        self.analytics: Optional[object] = None  # OperatorManager, if attached
        self._register_routes()

    def _register_cache_gauges(self) -> None:
        """Collection-time gauges over the per-sensor caches: evaluated
        by the /metrics scraper, costing the data path nothing."""
        self.telemetry.gauge(
            "cache_sensor_count", fn=lambda: len(self.caches)
        )
        self.telemetry.gauge(
            "cache_occupancy_readings",
            fn=lambda: sum(len(c) for c in self.caches.values()),
        )
        self.telemetry.gauge(
            "cache_capacity_readings",
            fn=lambda: sum(c.capacity for c in self.caches.values()),
        )
        self.telemetry.gauge(
            "cache_memory_bytes",
            fn=lambda: sum(c.memory_bytes() for c in self.caches.values()),
        )
        self.telemetry.gauge(
            "cache_stale_drops",
            fn=lambda: sum(c.stale_drops for c in self.caches.values()),
        )

    # ------------------------------------------------------------------
    # Telemetry-backed counters (kept as attributes for compatibility)
    # ------------------------------------------------------------------

    @property
    def sampling_busy_ns(self) -> int:
        """Cumulative wall-clock ns spent inside plugin sampling."""
        return self._m_sampling_busy.value

    @property
    def sampling_errors(self) -> int:
        """Sampling passes that raised (the loop kept running)."""
        return self._m_sampling_errors.value

    # ------------------------------------------------------------------
    # Plugin management
    # ------------------------------------------------------------------

    def add_plugin(self, plugin: MonitoringPlugin) -> None:
        """Install a monitoring plugin: create caches, schedule sampling."""
        if plugin.name in self._plugins:
            raise ConfigError(f"duplicate monitoring plugin {plugin.name!r}")
        for sensor in plugin.sensors():
            if sensor.topic in self.sensors:
                raise ConfigError(f"duplicate sensor topic {sensor.topic}")
            self.sensors[sensor.topic] = sensor
            self.caches[sensor.topic] = SensorCache.for_duration(
                self.cache_window_ns, plugin.interval_ns
            )
        self._plugins[plugin.name] = plugin
        self._m_plugin_latency[plugin.name] = self.telemetry.histogram(
            "sampling_latency_ns", plugin=plugin.name
        )
        task = self.scheduler.add_callback(
            f"{self.name}:{plugin.name}",
            lambda ts, p=plugin: self._sample_plugin(p, ts),
            plugin.interval_ns,
        )
        self._tasks[plugin.name] = task

    def plugin(self, name: str) -> MonitoringPlugin:
        """Look up an installed plugin."""
        try:
            return self._plugins[name]
        except KeyError:
            raise PluginError(f"no monitoring plugin {name!r} on {self.name}") from None

    def plugins(self) -> List[str]:
        """Names of installed monitoring plugins."""
        return list(self._plugins)

    def set_plugin_enabled(self, name: str, enabled: bool) -> None:
        """Start or stop a plugin's sampling task."""
        if name not in self._plugins:
            raise PluginError(f"no monitoring plugin {name!r} on {self.name}")
        self._tasks[name].enabled = enabled

    def _sample_plugin(self, plugin: MonitoringPlugin, ts: int) -> None:
        t0 = time.perf_counter_ns()
        try:
            for sensor, value in plugin.sample(ts):
                self.store_reading(sensor, ts, value)
        except Exception as exc:
            # A faulty plugin must not take down the sampling loop (or
            # the other plugins sharing it): count and continue.
            self._m_sampling_errors.inc()
            self.last_sampling_errors = (
                self.last_sampling_errors + [f"{plugin.name}@{ts}: {exc}"]
            )[-16:]
        elapsed = time.perf_counter_ns() - t0
        self._m_sampling_busy.inc(elapsed)
        self._m_plugin_latency[plugin.name].observe(elapsed)

    # ------------------------------------------------------------------
    # Data path (also used by Wintermute operator outputs)
    # ------------------------------------------------------------------

    def _cache_for_sensor(self, sensor: Sensor) -> SensorCache:
        """Lazy cache registration shared by the scalar and batch store
        paths: operator outputs register with the host cache window the
        first time they are written."""
        cache = self.caches.get(sensor.topic)
        if cache is None:
            interval = getattr(sensor, "interval_hint_ns", 0) or NS_PER_SEC
            cache = self.caches[sensor.topic] = SensorCache.for_duration(
                self.cache_window_ns, interval
            )
            self.sensors[sensor.topic] = sensor
        return cache

    def store_reading(self, sensor: Sensor, ts: int, value: float) -> None:
        """Cache a reading and publish it if the sensor is published.

        Operator outputs flow through the same call, which is what makes
        them "identical to all other sensor data" (Section IV-d) and
        thus usable as pipeline inputs downstream.
        """
        self._cache_for_sensor(sensor).store(ts, value)
        if sensor.publish:
            self._publish(Message(sensor.topic, value, ts))

    def store_readings_batch(self, ts, readings) -> None:
        """Store a whole pass's operator outputs in one call.

        ``readings`` is a sequence of ``(sensor, value)`` pairs sharing
        one timestamp.  Caching behaviour matches per-reading
        :meth:`store_reading` exactly (lazy cache creation included);
        publishable readings are collected and handed to the broker as
        one batch so MQTT fan-out bookkeeping is paid once per pass.
        """
        to_publish = []
        for sensor, value in readings:
            self._cache_for_sensor(sensor).store(ts, value)
            if sensor.publish:
                to_publish.append(Message(sensor.topic, value, ts))
        if to_publish:
            self._publish_batch(to_publish)

    # ------------------------------------------------------------------
    # Store-and-forward publish path
    # ------------------------------------------------------------------

    @property
    def spill_depth(self) -> int:
        """Readings buffered for re-publication on reconnect."""
        with self._spill_lock:
            return len(self._spill)

    def _queue_behind_spill(self) -> bool:
        """While spilled readings await replay, new publishes must line
        up behind them — bypassing the queue would reorder the stream
        and the agent's caches would drop the late replays as stale."""
        with self._spill_lock:
            return self._replaying or len(self._spill) > 0

    def _publish(self, msg: Message) -> None:
        if self._queue_behind_spill():
            self._spill_message(msg)
            self._schedule_retry()
            return
        try:
            self.broker.publish(msg.topic, msg.value, msg.timestamp)
        except LinkDownError:
            self._m_link_refusals.inc()
            self._spill_message(msg)
            self._schedule_retry()

    def _publish_batch(self, messages: List[Message]) -> None:
        publish_batch = getattr(self.broker, "publish_batch", None)
        if publish_batch is None:
            for msg in messages:
                self._publish(msg)
            return
        if self._queue_behind_spill():
            for msg in messages:
                self._spill_message(msg)
            self._schedule_retry()
            return
        try:
            publish_batch(messages)
        except LinkDownError as exc:
            refused = exc.refused or list(messages)
            self._m_link_refusals.inc(len(refused))
            for msg in refused:
                self._spill_message(msg)
            self._schedule_retry()

    def _spill_message(self, msg: Message) -> None:
        with self._spill_lock:
            evicted = self._spill.append(msg)
        if evicted is msg:  # refused outright (drop-newest at capacity)
            self._m_spill_dropped.inc()
            return
        self._m_spill_buffered.inc()
        if evicted is not None:
            self._m_spill_dropped.inc()

    def _schedule_retry(self) -> None:
        with self._spill_lock:
            if self._retry_pending or not len(self._spill):
                return
            self._retry_pending = True
            delay = self._backoff.next_delay()
        self.scheduler.add_once(
            f"{self.name}:spill-retry",
            self._replay_spill,
            self.scheduler.clock.now + delay,
        )

    def _replay_spill(self, ts: int) -> None:
        """Re-publish spilled readings in order; on refusal, back off.

        At most one replay may drain the queue at a time: a scheduled
        retry racing a ``flush_spill()`` from another thread would
        interleave their ``popleft``/publish pairs and break the
        in-order replay guarantee, so late-comers yield to the owner.
        """
        with self._spill_lock:
            self._retry_pending = False
            if self._replaying:
                return  # a concurrent replay already owns the queue
            self._replaying = True
        try:
            while True:
                with self._spill_lock:
                    msg = self._spill.popleft()
                    if msg is None:
                        self._backoff.reset()
                        return
                try:
                    self.broker.publish(msg.topic, msg.value, msg.timestamp)
                except LinkDownError:
                    self._m_link_refusals.inc()
                    with self._spill_lock:
                        self._spill.appendleft(msg)
                    self._schedule_retry()
                    return
                self._m_spill_replayed.inc()
        finally:
            with self._spill_lock:
                self._replaying = False

    def flush_spill(self) -> int:
        """Attempt an immediate replay; returns the remaining depth."""
        self._replay_spill(self.scheduler.clock.now)
        return self.spill_depth

    def cache_for(self, topic: str) -> Optional[SensorCache]:
        """The cache holding ``topic``'s readings, if locally present."""
        return self.caches.get(topic)

    def sensor_topics(self) -> List[str]:
        """All topics visible on this host (sampled + operator outputs)."""
        return list(self.caches.keys())

    @property
    def storage(self):
        """Pushers have no storage backend; operators fall back to None."""
        return None

    # ------------------------------------------------------------------
    # Analytics integration
    # ------------------------------------------------------------------

    def attach_analytics(self, manager) -> None:
        """Attach a Wintermute OperatorManager to this host."""
        self.analytics = manager
        manager.bind_host(self)

    # ------------------------------------------------------------------
    # REST API
    # ------------------------------------------------------------------

    def _register_routes(self) -> None:
        self.rest.register("GET", "/plugins", self._route_plugins)
        self.rest.register("GET", "/sensors", self._route_sensors)
        self.rest.register("PUT", "/plugins", self._route_plugin_action)
        register_metrics_route(self.rest, self.telemetry)

    def _route_plugins(self, request) -> RestResponse:
        return RestResponse.json({"plugins": self.plugins()})

    def _route_sensors(self, request) -> RestResponse:
        return RestResponse.json({"sensors": sorted(self.sensor_topics())})

    def _route_plugin_action(self, request) -> RestResponse:
        parts = request.path.strip("/").split("/")
        if len(parts) != 3 or parts[2] not in ("start", "stop"):
            return RestResponse.error(
                "expected /plugins/<name>/{start|stop}", 400
            )
        name, action = parts[1], parts[2]
        try:
            self.set_plugin_enabled(name, action == "start")
        except PluginError as exc:
            return RestResponse.error(str(exc), 404)
        return RestResponse.json({"plugin": name, "action": action})
