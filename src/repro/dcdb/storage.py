"""In-memory time-series storage backend.

Stands in for the Apache Cassandra backend of DCDB.  It preserves the
interfaces Wintermute relies on: per-sensor inserts keyed by topic, range
queries over ``[start, end]`` timestamp intervals, newest-value lookups,
and TTL-based expiry.  Data is held in per-sensor append-only column
pairs (int64 timestamps / float64 values) with amortised O(1) appends and
O(log N) range location via binary search.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.errors import StorageError
from repro.dcdb.sensor import SensorReading


class _Series:
    """Growable column pair for one sensor."""

    __slots__ = ("ts", "val", "size")

    _INITIAL = 256

    def __init__(self) -> None:
        self.ts = np.empty(self._INITIAL, dtype=np.int64)
        self.val = np.empty(self._INITIAL, dtype=np.float64)
        self.size = 0

    def _grow(self, needed: int) -> None:
        cap = len(self.ts)
        while cap < needed:
            cap *= 2
        new_ts = np.empty(cap, dtype=np.int64)
        new_val = np.empty(cap, dtype=np.float64)
        new_ts[: self.size] = self.ts[: self.size]
        new_val[: self.size] = self.val[: self.size]
        self.ts, self.val = new_ts, new_val

    def append(self, timestamp: int, value: float) -> bool:
        """Append one reading; returns False when it was dropped.

        Maintain time order: DCDB rejects out-of-order inserts at the
        same key; we drop them silently like the sensor cache does.
        """
        if self.size and timestamp < int(self.ts[self.size - 1]):
            return False
        if self.size == len(self.ts):
            self._grow(self.size + 1)
        self.ts[self.size] = timestamp
        self.val[self.size] = value
        self.size += 1
        return True

    def append_batch(self, timestamps: np.ndarray, values: np.ndarray) -> int:
        """Append a batch under the same out-of-order-drop semantics as
        scalar :meth:`append`; returns how many readings were stored.

        An element survives only if it is >= every element stored before
        it — both the series tail and any earlier batch element that was
        itself kept.  Because any element larger than the running prefix
        maximum is always kept, "kept running maximum" and "prefix
        maximum" coincide, so the guard vectorises as one accumulated
        maximum plus a tail comparison.
        """
        n = len(timestamps)
        if n == 0:
            return 0
        keep = timestamps >= np.maximum.accumulate(timestamps)
        if self.size:
            keep &= timestamps >= int(self.ts[self.size - 1])
        if not keep.all():
            timestamps = timestamps[keep]
            values = values[keep]
            n = len(timestamps)
            if n == 0:
                return 0
        if self.size + n > len(self.ts):
            self._grow(self.size + n)
        self.ts[self.size : self.size + n] = timestamps
        self.val[self.size : self.size + n] = values
        self.size += n
        return n

    def range(self, start: int, end: int) -> Tuple[np.ndarray, np.ndarray]:
        lo = int(np.searchsorted(self.ts[: self.size], start, side="left"))
        hi = int(np.searchsorted(self.ts[: self.size], end, side="right"))
        return self.ts[lo:hi], self.val[lo:hi]

    def expire_before(self, cutoff: int) -> int:
        """Drop readings older than ``cutoff``; returns how many.

        When expiry leaves the buffers less than a quarter full the
        column pair is reallocated at the next power-of-two fit, so
        long-retention runs actually release the memory their TTL
        sweeps free up instead of keeping peak-sized buffers forever.
        """
        lo = int(np.searchsorted(self.ts[: self.size], cutoff, side="left"))
        if lo == 0:
            return 0
        keep = self.size - lo
        cap = len(self.ts)
        if cap > self._INITIAL and keep < cap / 4:
            new_cap = self._INITIAL
            while new_cap < keep:
                new_cap *= 2
            new_ts = np.empty(new_cap, dtype=np.int64)
            new_val = np.empty(new_cap, dtype=np.float64)
            new_ts[:keep] = self.ts[lo : self.size]
            new_val[:keep] = self.val[lo : self.size]
            self.ts, self.val = new_ts, new_val
        else:
            self.ts[:keep] = self.ts[lo : self.size]
            self.val[:keep] = self.val[lo : self.size]
        self.size = keep
        return lo

    def memory_bytes(self) -> int:
        return self.ts.nbytes + self.val.nbytes


class StorageBackend:
    """Topic-keyed time-series store.

    Args:
        ttl_ns: if positive, readings older than ``newest - ttl_ns`` are
            eligible for expiry via :meth:`expire`.
    """

    def __init__(self, ttl_ns: int = 0) -> None:
        self._series: Dict[str, _Series] = {}
        self.ttl_ns = int(ttl_ns)
        self.insert_count = 0
        self.query_count = 0
        #: Readings refused for violating per-topic time order.
        self.ooo_dropped = 0

    # ------------------------------------------------------------------
    # Inserts
    # ------------------------------------------------------------------

    def insert(self, topic: str, timestamp: int, value: float) -> None:
        """Insert one reading for ``topic``."""
        series = self._series.get(topic)
        if series is None:
            series = self._series[topic] = _Series()
        if series.append(timestamp, value):
            self.insert_count += 1
        else:
            self.ooo_dropped += 1

    def insert_batch(
        self, topic: str, timestamps: np.ndarray, values: np.ndarray
    ) -> None:
        """Insert a time-ordered batch for ``topic``."""
        if len(timestamps) != len(values):
            raise StorageError(
                f"batch length mismatch: {len(timestamps)} != {len(values)}"
            )
        series = self._series.get(topic)
        if series is None:
            series = self._series[topic] = _Series()
        stored = series.append_batch(
            np.asarray(timestamps, dtype=np.int64),
            np.asarray(values, dtype=np.float64),
        )
        self.insert_count += stored
        self.ooo_dropped += len(timestamps) - stored

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def topics(self) -> List[str]:
        """All topics with stored data."""
        return list(self._series.keys())

    def __contains__(self, topic: str) -> bool:
        return topic in self._series

    def count(self, topic: str) -> int:
        """Number of stored readings for ``topic`` (0 if unknown)."""
        series = self._series.get(topic)
        return series.size if series else 0

    def query(
        self, topic: str, start_ts: int, end_ts: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Readings for ``topic`` in ``[start_ts, end_ts]``.

        Returns (timestamps, values) array views, oldest first.  Unknown
        topics yield empty arrays, matching a Cassandra empty result set.
        """
        if start_ts > end_ts:
            raise StorageError(f"inverted range: {start_ts} > {end_ts}")
        self.query_count += 1
        series = self._series.get(topic)
        if series is None:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty(0, dtype=np.float64)
        return series.range(start_ts, end_ts)

    def latest(self, topic: str) -> Optional[SensorReading]:
        """Most recent reading for ``topic``, or None."""
        series = self._series.get(topic)
        if series is None or series.size == 0:
            return None
        i = series.size - 1
        return SensorReading(int(series.ts[i]), float(series.val[i]))

    def query_readings(
        self, topic: str, start_ts: int, end_ts: int
    ) -> List[SensorReading]:
        """Like :meth:`query`, but materialised as reading tuples."""
        ts, val = self.query(topic, start_ts, end_ts)
        return [SensorReading(int(t), float(v)) for t, v in zip(ts, val)]

    def query_aggregate(
        self,
        topic: str,
        start_ts: int,
        end_ts: int,
        bucket_ns: int,
        op: str = "mean",
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Downsampled range query: one value per ``bucket_ns`` bucket.

        The dcdbquery tool offers the same server-side downsampling for
        long ranges.  ``op`` is one of ``mean``, ``min``, ``max``,
        ``sum``, ``count``; empty buckets are omitted from the result.
        Returns (bucket start timestamps, aggregated values).
        """
        if bucket_ns <= 0:
            raise StorageError(f"bucket_ns must be positive: {bucket_ns}")
        reducers = {
            "mean": None,  # computed from sums/counts below
            "min": np.minimum,
            "max": np.maximum,
            "sum": None,
            "count": None,
        }
        if op not in reducers:
            raise StorageError(f"unknown aggregate {op!r}")
        ts, val = self.query(topic, start_ts, end_ts)
        if len(ts) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty(0, dtype=np.float64)
        bucket_idx = (ts - start_ts) // bucket_ns
        n_buckets = int(bucket_idx.max()) + 1
        counts = np.bincount(bucket_idx, minlength=n_buckets)
        occupied = np.nonzero(counts)[0]
        bucket_ts = (start_ts + occupied * bucket_ns).astype(np.int64)
        if op == "count":
            return bucket_ts, counts[occupied].astype(np.float64)
        if op in ("mean", "sum"):
            sums = np.bincount(bucket_idx, weights=val, minlength=n_buckets)
            if op == "sum":
                return bucket_ts, sums[occupied]
            with np.errstate(invalid="ignore"):
                means = sums[occupied] / counts[occupied]
            return bucket_ts, means
        # min/max: ufunc reduceat over bucket boundaries.
        boundaries = np.searchsorted(bucket_idx, occupied, side="left")
        reduced = reducers[op].reduceat(val, boundaries)
        return bucket_ts, reduced

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def expire(self, now_ns: int) -> int:
        """Apply the TTL relative to ``now_ns``; returns dropped count."""
        if self.ttl_ns <= 0:
            return 0
        cutoff = now_ns - self.ttl_ns
        return sum(s.expire_before(cutoff) for s in self._series.values())

    def drop(self, topic: str) -> bool:
        """Delete an entire series; returns whether it existed."""
        return self._series.pop(topic, None) is not None

    def memory_bytes(self) -> int:
        """Total resident size of all series buffers."""
        return sum(s.memory_bytes() for s in self._series.values())

    def total_readings(self) -> int:
        """Total stored readings across all topics."""
        return sum(s.size for s in self._series.values())

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str) -> int:
        """Snapshot every series to a compressed ``.npz`` file.

        The Cassandra backend is durable by nature; the in-memory
        stand-in offers explicit snapshots instead, so long experiment
        outputs can be archived and reloaded.  Returns the number of
        series written.
        """
        arrays = {}
        for i, (topic, series) in enumerate(sorted(self._series.items())):
            arrays[f"topic_{i}"] = np.frombuffer(
                topic.encode("utf-8"), dtype=np.uint8
            )
            arrays[f"ts_{i}"] = series.ts[: series.size]
            arrays[f"val_{i}"] = series.val[: series.size]
        np.savez_compressed(path, n_series=np.int64(len(self._series)),
                            **arrays)
        return len(self._series)

    @classmethod
    def load(cls, path: str, ttl_ns: int = 0) -> "StorageBackend":
        """Restore a backend from a :meth:`save` snapshot."""
        storage = cls(ttl_ns=ttl_ns)
        with np.load(path) as data:
            n = int(data["n_series"])
            for i in range(n):
                topic = bytes(data[f"topic_{i}"]).decode("utf-8")
                storage.insert_batch(topic, data[f"ts_{i}"], data[f"val_{i}"])
        storage.insert_count = 0  # snapshot restore is not "inserts"
        return storage
